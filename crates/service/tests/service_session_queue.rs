//! Conformance and property tests of pool-aware session scheduling and
//! per-connection multiplexing.
//!
//! The acceptance bar for the session dispatch queue: N concurrent
//! clients hammering one session see every request answered exactly
//! once, in per-session FIFO order, with **zero** `session_busy`
//! refusals on the default config — the busy-refusal path used to drop
//! exactly this workload. Sweep-2D sessions make "exactly once" and
//! "in order" mechanically checkable: every `get_next` answers with its
//! region's `region_lo`, which is unique per enumeration step, so the
//! union of all clients' responses must equal (as a multiset) a prefix
//! of a reference enumeration, and mapping each response to its index
//! in that reference recovers the grant order — each client's own
//! indices must be increasing (its requests are sequential, and the
//! dispatch queue is FIFO).
//!
//! The multiplexing bar: two streamed batches interleave on one socket
//! (the fast one finishes while the slow one is still in flight), with
//! plain calls still answered in between — all demultiplexed by the
//! `stream.request` id echo.

use proptest::prelude::*;
use serde_json::Value;
use srank_service::{serve_tcp, Client, Engine, EngineConfig, StreamEvent};
use std::sync::Arc;

fn obj(s: &str) -> Value {
    serde_json::from_str(s).expect("test request is valid JSON")
}

/// Loads a 2-D synthetic dataset with plenty of distinct rankings and
/// opens one shared sweep2d session; returns the session id.
fn open_shared_session(client: &mut Client, n: usize) -> u64 {
    client
        .call_ok(&obj(&format!(
            r#"{{"op": "registry.load", "dataset": "s", "builtin": "synthetic-independent", "n": {n}, "d": 2, "seed": 3}}"#
        )))
        .expect("load");
    client
        .call_ok(&obj(
            r#"{"op": "session.open", "dataset": "s", "kind": "sweep2d"}"#,
        ))
        .expect("open")
        .get("session")
        .and_then(Value::as_u64)
        .expect("session id")
}

/// One `session.get_next`, returning the step's `region_lo`. Panics on
/// `done: true` (the tests size their workloads well under the
/// enumeration length) and on any error.
fn get_next_region(client: &mut Client, session: u64) -> f64 {
    let next = client
        .call_ok(&obj(&format!(
            r#"{{"op": "session.get_next", "session": {session}}}"#
        )))
        .expect("get_next answered (no lost work, no busy refusal)");
    assert_ne!(
        next.get("done").and_then(Value::as_bool),
        Some(true),
        "enumeration exhausted — test workload sized wrong"
    );
    next.get("region_lo")
        .and_then(Value::as_f64)
        .expect("sweep2d step carries region_lo")
}

/// Drains `count` reference steps from a *fresh* session with identical
/// open parameters (the sweep is deterministic, so this is the ground
/// truth the concurrent runs must match).
fn reference_regions(client: &mut Client, count: usize) -> Vec<f64> {
    let session = client
        .call_ok(&obj(
            r#"{"op": "session.open", "dataset": "s", "kind": "sweep2d"}"#,
        ))
        .expect("open reference")
        .get("session")
        .and_then(Value::as_u64)
        .expect("session id");
    let regions: Vec<f64> = (0..count)
        .map(|_| get_next_region(client, session))
        .collect();
    client
        .call_ok(&obj(&format!(
            r#"{{"op": "session.close", "session": {session}}}"#
        )))
        .expect("close reference");
    regions
}

fn session_stats(client: &mut Client) -> (Value, Value) {
    let stats = client.call_ok(&obj(r#"{"op": "stats"}"#)).expect("stats");
    (
        stats.get("session_table").expect("session_table").clone(),
        stats.get("session_queue").expect("session_queue").clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// THE no-lost-work property: N concurrent TCP clients hammer one
    /// session; every request is answered exactly once (the union of
    /// responses is exactly a prefix of the reference enumeration), each
    /// client sees its own responses in FIFO order, and the default
    /// config refuses nothing.
    #[test]
    fn concurrent_clients_on_one_session_lose_no_work(
        clients in 2usize..5,
        per_client in 5usize..20,
    ) {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let mut server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0", clients + 1).expect("bind");
        let addr = server.addr();
        let mut setup = Client::connect(addr).expect("connect");
        let session = open_shared_session(&mut setup, 60);

        let total = clients * per_client;
        let mut streams: Vec<Vec<f64>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        (0..per_client)
                            .map(|_| get_next_region(&mut client, session))
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            for handle in handles {
                streams.push(handle.join().expect("client thread"));
            }
        });

        // Exactly once, nothing skipped: the union of all clients'
        // responses is exactly the first `total` reference steps (the
        // enumeration is by decreasing stability; region_lo is the
        // step's unique fingerprint, not a monotone quantity).
        let reference = reference_regions(&mut setup, total);
        let mut seen: Vec<f64> = streams.iter().flatten().copied().collect();
        seen.sort_by(f64::total_cmp);
        let mut expected = reference.clone();
        expected.sort_by(f64::total_cmp);
        prop_assert_eq!(seen.len(), total);
        prop_assert_eq!(&seen, &expected, "every request answered exactly once");

        // Per-session FIFO: a client's next request is only sent after
        // its previous response, so its grants are ordered — mapping its
        // responses back to reference enumeration indices must give a
        // strictly increasing sequence.
        let index_of: std::collections::HashMap<u64, usize> = reference
            .iter()
            .enumerate()
            .map(|(i, r)| (r.to_bits(), i))
            .collect();
        for (t, stream) in streams.iter().enumerate() {
            let indices: Vec<usize> = stream
                .iter()
                .map(|r| *index_of.get(&r.to_bits()).expect("step is in the reference"))
                .collect();
            for w in indices.windows(2) {
                prop_assert!(w[0] < w[1], "client {t} saw out-of-order steps {indices:?}");
            }
        }

        // Zero refusals on the default config; contention shows up (if
        // at all) as queued work, not as dropped work.
        let (table, queue) = session_stats(&mut setup);
        prop_assert_eq!(
            table.get("refusals").and_then(Value::as_u64),
            Some(0),
            "no session_busy refusals: {}", serde_json::to_string(&table).unwrap()
        );
        prop_assert_eq!(
            queue.get("queued_total").and_then(Value::as_u64),
            queue.get("granted").and_then(Value::as_u64),
            "every queued request was granted: {}", serde_json::to_string(&queue).unwrap()
        );
        prop_assert_eq!(queue.get("depth").and_then(Value::as_u64), Some(0));

        server.shutdown();
    }
}

#[test]
fn batch_sub_requests_on_one_session_park_and_redispatch() {
    // A buffered batch aiming 16 get_next sub-requests at ONE session:
    // under PR-3 semantics most of them raced into `session_busy` and
    // were dropped; now they park on the session's dispatch queue, the
    // pool re-dispatches them as the checkout returns, and all 16 answer
    // distinct consecutive enumeration steps.
    let engine = Engine::new(EngineConfig {
        pool_workers: 4,
        ..EngineConfig::default()
    });
    let call = |line: &str| -> Value {
        serde_json::from_str(&engine.handle_line(line)).expect("response is JSON")
    };
    call(
        r#"{"op": "registry.load", "dataset": "b", "builtin": "bluenile", "n": 60, "d": 5, "seed": 1}"#,
    );
    // A randomized session: each get_next samples `budget` fresh weight
    // vectors, which (a) takes long enough that the pool's in-flight
    // sub-requests reliably collide on the checkout, and (b) reports a
    // cumulative `samples_used`, so exactly-once execution is the exact
    // set {budget, 2·budget, …, SUBS·budget}.
    const BUDGET: u64 = 5000;
    let opened = call(&format!(
        r#"{{"op": "session.open", "dataset": "b", "kind": "randomized", "scope": "full", "budget": {BUDGET}}}"#
    ));
    let session = opened
        .get("result")
        .and_then(|r| r.get("session"))
        .and_then(Value::as_u64)
        .expect("session id");

    const SUBS: usize = 16;
    let subs: Vec<String> = (0..SUBS)
        .map(|i| format!(r#"{{"id": {i}, "op": "session.get_next", "session": {session}}}"#))
        .collect();
    let response = call(&format!(
        r#"{{"op": "batch", "requests": [{}]}}"#,
        subs.join(", ")
    ));
    let results = response
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Value::as_array)
        .expect("batch results");
    assert_eq!(results.len(), SUBS);
    let mut samples_used: Vec<u64> = results
        .iter()
        .map(|envelope| {
            assert_eq!(
                envelope.get("ok").and_then(Value::as_bool),
                Some(true),
                "no sub-request may be refused: {}",
                serde_json::to_string(envelope).unwrap()
            );
            envelope
                .get("result")
                .and_then(|r| r.get("samples_used"))
                .and_then(Value::as_u64)
                .expect("samples_used")
        })
        .collect();
    samples_used.sort_unstable();
    let expected: Vec<u64> = (1..=SUBS as u64).map(|k| k * BUDGET).collect();
    assert_eq!(
        samples_used, expected,
        "each sub-request advanced the session exactly once, serialized through the queue"
    );

    let stats = call(r#"{"op": "stats"}"#);
    let table = stats
        .get("result")
        .and_then(|r| r.get("session_table"))
        .expect("session_table");
    assert_eq!(
        table.get("refusals").and_then(Value::as_u64),
        Some(0),
        "parking replaced every busy refusal"
    );
    // With 4 workers racing one session, at least some sub-requests must
    // actually have parked (the first holds the session while the other
    // in-flight ones arrive).
    let queue = stats
        .get("result")
        .and_then(|r| r.get("session_queue"))
        .expect("session_queue");
    assert!(
        queue.get("queued_total").and_then(Value::as_u64) >= Some(1),
        "expected observable parking: {}",
        serde_json::to_string(queue).unwrap()
    );
}

#[test]
fn queued_request_survives_an_idle_eviction_sweep() {
    // Regression (idle-eviction vs queued-sub-request race): a session
    // with pending queued work must not be evicted out from under its
    // queue, even by an aggressive TTL-zero sweep running mid-handoff.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let call = |line: &str| -> Value {
        serde_json::from_str(&engine.handle_line(line)).expect("response is JSON")
    };
    call(
        r#"{"op": "registry.load", "dataset": "b", "builtin": "bluenile", "n": 60, "d": 5, "seed": 1}"#,
    );
    // A randomized session whose get_next is deliberately slow (large
    // budget), so the queued second request reliably parks behind it.
    let opened = call(
        r#"{"op": "session.open", "dataset": "b", "kind": "randomized", "scope": "full", "budget": 400000}"#,
    );
    let session = opened
        .get("result")
        .and_then(|r| r.get("session"))
        .and_then(Value::as_u64)
        .expect("session id");

    std::thread::scope(|s| {
        let slow = s.spawn(|| {
            call(&format!(
                r#"{{"op": "session.get_next", "session": {session}}}"#
            ))
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let queued = s.spawn(|| {
            call(&format!(
                r#"{{"op": "session.get_next", "session": {session}, "budget": 1000}}"#
            ))
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        // The sweep runs while the first request holds the session and
        // the second is (in all but pathological schedules) queued on it.
        assert_eq!(
            engine.evict_idle_sessions(Some(std::time::Duration::ZERO)),
            0,
            "a session with in-flight + queued work is not evictable"
        );
        for handle in [slow, queued] {
            let response = handle.join().expect("request thread");
            assert_eq!(
                response.get("ok").and_then(Value::as_bool),
                Some(true),
                "queued request must survive the sweep: {}",
                serde_json::to_string(&response).unwrap()
            );
        }
    });
}

#[test]
fn multiplexed_streams_interleave_on_one_socket() {
    // Two streamed batches in flight on ONE connection: the fast one
    // must finish while the slow one is still streaming, and a plain
    // call issued between pulls is answered correctly (its response is
    // routed around the buffered stream envelopes).
    let engine = Arc::new(Engine::new(EngineConfig {
        pool_workers: 4,
        ..EngineConfig::default()
    }));
    let mut server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0", 2).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .call_ok(&obj(
            r#"{"op": "registry.load", "dataset": "b", "builtin": "bluenile", "n": 60, "d": 5, "seed": 1}"#,
        ))
        .expect("load");

    let slow = client
        .stream_begin(&obj(
            r#"{"id": "slow", "op": "batch", "stream": true, "requests": [
                {"id": "s0", "op": "verify", "dataset": "b", "weights": [1, 1, 1, 1, 1], "samples": 150000}
            ]}"#,
        ))
        .expect("begin slow");
    let fast = client
        .stream_begin(&obj(
            r#"{"id": "fast", "op": "batch", "stream": true, "requests": [
                {"id": "f0", "op": "ping"}, {"id": "f1", "op": "ping"}, {"id": "f2", "op": "ping"}
            ]}"#,
        ))
        .expect("begin fast");
    assert_eq!(client.streams_in_flight(), 2);

    // A plain call while two streams are in flight: demuxed correctly.
    let pong = client
        .call_ok(&obj(r#"{"op": "ping"}"#))
        .expect("plain call between streams");
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));

    // Drain the FAST stream to completion first: its envelopes must all
    // arrive while the slow verify is still in flight.
    let mut fast_envelopes = 0;
    loop {
        match client.stream_next(fast).expect("fast stream") {
            StreamEvent::Envelope(envelope) => {
                assert!(envelope
                    .get("id")
                    .and_then(Value::as_str)
                    .unwrap()
                    .starts_with('f'));
                fast_envelopes += 1;
            }
            StreamEvent::Done(terminal) => {
                assert_eq!(
                    terminal
                        .get("result")
                        .and_then(|r| r.get("count"))
                        .and_then(Value::as_u64),
                    Some(3)
                );
                break;
            }
        }
    }
    assert_eq!(fast_envelopes, 3);
    assert_eq!(
        client.streams_in_flight(),
        1,
        "the fast batch finished while the slow one is still streaming"
    );

    // Now the slow stream completes too — nothing was lost to the
    // interleaving.
    let mut slow_envelopes = 0;
    while let StreamEvent::Envelope(envelope) = client.stream_next(slow).expect("slow stream") {
        assert_eq!(envelope.get("id").and_then(Value::as_str), Some("s0"));
        assert_eq!(envelope.get("ok").and_then(Value::as_bool), Some(true));
        slow_envelopes += 1;
    }
    assert_eq!(slow_envelopes, 1);
    assert_eq!(client.streams_in_flight(), 0);

    server.shutdown();
}

#[test]
fn plain_call_refuses_an_id_colliding_with_an_in_flight_stream() {
    // A call() whose id equals an in-flight stream's key would be
    // indistinguishable from that stream's terminal line; the client
    // must refuse it up front instead of hanging on a swallowed
    // response.
    let engine = Arc::new(Engine::with_defaults());
    let mut server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0", 2).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .call_ok(&obj(
            r#"{"op": "registry.load", "dataset": "b", "builtin": "bluenile", "n": 60, "d": 5, "seed": 1}"#,
        ))
        .expect("load");
    let stream = client
        .stream_begin(&obj(
            r#"{"id": "x", "op": "batch", "stream": true, "requests": [
                {"op": "verify", "dataset": "b", "weights": [1, 1, 1, 1, 1], "samples": 100000}
            ]}"#,
        ))
        .expect("begin");
    let err = client
        .call(&obj(r#"{"id": "x", "op": "ping"}"#))
        .expect_err("colliding id refused");
    assert!(err.to_string().contains("collides"), "{err}");
    // A non-colliding call still works, and the stream still completes.
    let pong = client
        .call_ok(&obj(r#"{"id": "y", "op": "ping"}"#))
        .expect("distinct id fine");
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));
    let mut events = 0;
    while let StreamEvent::Envelope(_) = client.stream_next(stream).expect("stream") {
        events += 1;
    }
    assert_eq!(events, 1);
    server.shutdown();
}

#[test]
fn stream_tags_echo_the_outer_request_id() {
    // Every line of a streamed batch carries the outer id in its
    // `stream.request` tag — the demultiplexing contract.
    let engine = Engine::with_defaults();
    let line = r#"{"id": "outer-7", "op": "batch", "stream": true, "requests": [{"op": "ping"}, {"op": "ping"}]}"#;
    let mut lines: Vec<Value> = Vec::new();
    engine
        .handle_line_streamed(line, &mut |payload| {
            for l in payload.split('\n') {
                lines.push(serde_json::from_str(l).expect("line is JSON"));
            }
            Ok(())
        })
        .unwrap();
    assert_eq!(lines.len(), 3, "two envelopes + terminal");
    for line in &lines {
        let tag = line.get("stream").expect("tagged");
        assert_eq!(
            tag.get("request").and_then(Value::as_str),
            Some("outer-7"),
            "stream.request echoes the outer id on every line"
        );
    }
}

#[test]
fn client_surfaces_connection_closed_and_fails_fast() {
    // A server that dies mid-response used to surface as a raw JSON
    // parse error and leave the client desynced; now it must be a clear
    // "connection closed" error, and the next call must fail fast.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        use std::io::{Read, Write};
        let (mut socket, _) = listener.accept().expect("accept");
        let mut buffer = [0u8; 1024];
        let _ = socket.read(&mut buffer); // the request line
                                          // A truncated response line, then EOF (server death mid-write).
        socket.write_all(br#"{"ok": tr"#).expect("write");
    });
    let mut client = Client::connect(addr).expect("connect");
    let err = client.call(&obj(r#"{"op": "ping"}"#)).expect_err("died");
    assert!(
        matches!(err, srank_service::ClientError::Transport(_)),
        "clear transport error, not a parse error: {err}"
    );
    let again = client.call(&obj(r#"{"op": "ping"}"#)).expect_err("dead");
    assert!(
        matches!(&again, srank_service::ClientError::Transport(why)
            if why.contains("connection closed")),
        "later calls fail fast on the dead connection: {again}"
    );
    server.join().unwrap();
}

#[test]
fn client_demuxes_by_request_echo_and_handles_eof_mid_stream() {
    // A hand-rolled server answers one tagged envelope for the client's
    // auto-injected stream id ("mux-0"), then dies. The client must
    // deliver that envelope, then surface "connection closed" (not a
    // parse error) on the next pull, and fail fast afterwards.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        use std::io::{Read, Write};
        let (mut socket, _) = listener.accept().expect("accept");
        let mut buffer = [0u8; 4096];
        let _ = socket.read(&mut buffer);
        socket
            .write_all(
                br#"{"id": 0, "ok": true, "cached": false, "result": {"pong": true}, "stream": {"batch_id": 1, "request": "mux-0", "index": 0, "last": false}}
"#,
            )
            .expect("write");
    });
    let mut client = Client::connect(addr).expect("connect");
    let stream = client
        .stream_begin(&obj(
            r#"{"op": "batch", "stream": true, "requests": [{"id": 0, "op": "ping"}, {"id": 1, "op": "ping"}]}"#,
        ))
        .expect("begin");
    match client.stream_next(stream).expect("first envelope") {
        StreamEvent::Envelope(envelope) => {
            assert_eq!(envelope.get("id").and_then(Value::as_u64), Some(0));
        }
        StreamEvent::Done(t) => panic!("not terminal: {}", serde_json::to_string(&t).unwrap()),
    }
    let err = client.stream_next(stream).expect_err("server died");
    assert!(
        matches!(err, srank_service::ClientError::Transport(_)),
        "EOF mid-stream is a transport error: {err}"
    );
    let fast = client.call(&obj(r#"{"op": "ping"}"#)).expect_err("dead");
    assert!(
        matches!(&fast, srank_service::ClientError::Transport(why)
            if why.contains("connection closed")),
        "{fast}"
    );
    server.join().unwrap();
}

/// The heavyweight variant for `scripts/check.sh` (stress section): many
/// clients × direct get_nexts AND multiplexed streamed batches whose
/// sub-requests all target the SAME session, on a deliberately tiny
/// 2-worker pool with a cap-1 response queue. Invariants: the test
/// finishes (no deadlock between parked sub-requests, the response
/// queue, and the mux threads), every enumeration step is answered
/// exactly once, zero busy refusals, pool quiescent at the end.
#[test]
#[ignore = "heavy; run via scripts/check.sh stress section"]
fn stress_shared_session_hammered_through_queue_and_mux() {
    let engine = Arc::new(Engine::new(EngineConfig {
        pool_workers: 2,
        stream_queue_cap: std::num::NonZeroUsize::new(1),
        ..EngineConfig::default()
    }));
    const CLIENTS: usize = 6;
    const DIRECT: usize = 10;
    const BATCHES: usize = 2;
    const SUBS: usize = 5;
    let mut server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0", CLIENTS + 1).expect("bind");
    let addr = server.addr();
    let mut setup = Client::connect(addr).expect("connect");
    let session = open_shared_session(&mut setup, 80);

    let mut all: Vec<f64> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut mine: Vec<f64> = Vec::new();
                    // Direct sequential get_nexts (FIFO-ordered per client)...
                    for _ in 0..DIRECT {
                        mine.push(get_next_region(&mut client, session));
                    }
                    // ...then two multiplexed streamed batches of get_next
                    // sub-requests, all on the same shared session.
                    let subs: Vec<String> = (0..SUBS)
                        .map(|i| {
                            format!(
                                r#"{{"id": {i}, "op": "session.get_next", "session": {session}}}"#
                            )
                        })
                        .collect();
                    let batch = format!(
                        r#"{{"op": "batch", "stream": true, "requests": [{}]}}"#,
                        subs.join(", ")
                    );
                    let streams: Vec<_> = (0..BATCHES)
                        .map(|_| client.stream_begin(&obj(&batch)).expect("begin"))
                        .collect();
                    let mut open = streams.len();
                    while open > 0 {
                        match client.stream_next_any().expect("pump").1 {
                            StreamEvent::Envelope(envelope) => {
                                assert_eq!(
                                    envelope.get("ok").and_then(Value::as_bool),
                                    Some(true),
                                    "no sub-request refused: {}",
                                    serde_json::to_string(&envelope).unwrap()
                                );
                                mine.push(
                                    envelope
                                        .get("result")
                                        .and_then(|r| r.get("region_lo"))
                                        .and_then(Value::as_f64)
                                        .expect("region_lo"),
                                );
                            }
                            StreamEvent::Done(_) => open -= 1,
                        }
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            all.extend(handle.join().expect("client thread"));
        }
    });

    let total = CLIENTS * (DIRECT + BATCHES * SUBS);
    all.sort_by(f64::total_cmp);
    let mut reference = reference_regions(&mut setup, total);
    reference.sort_by(f64::total_cmp);
    assert_eq!(all.len(), total);
    assert_eq!(all, reference, "every request answered exactly once");

    let (table, queue) = session_stats(&mut setup);
    assert_eq!(
        table.get("refusals").and_then(Value::as_u64),
        Some(0),
        "{}",
        serde_json::to_string(&table).unwrap()
    );
    assert_eq!(
        queue.get("queued_total").and_then(Value::as_u64),
        queue.get("granted").and_then(Value::as_u64)
    );
    let stats = setup.call_ok(&obj(r#"{"op": "stats"}"#)).expect("stats");
    let pool = stats.get("pool").expect("pool");
    assert_eq!(
        pool.get("submitted").and_then(Value::as_u64),
        pool.get("completed").and_then(Value::as_u64),
        "pool quiescent: {}",
        serde_json::to_string(pool).unwrap()
    );
    assert_eq!(pool.get("executing").and_then(Value::as_u64), Some(0));

    server.shutdown();
}
