//! Stress tests of the persistent pool + streaming pipeline: many
//! concurrent clients fanning M-sub batches onto a deliberately tiny
//! (2-worker) pool. The invariants: no deadlock (the test finishes), the
//! bounded response queue actually blocks (backpressure observable via
//! `stats`), every envelope arrives exactly once, and the worker count
//! stays constant.
//!
//! The `stress_` variant is heavier and `#[ignore]`d by default; it runs
//! under `scripts/check.sh --stress` behind a timeout guard so a
//! regression that wedges the pipeline fails fast instead of hanging CI.

use serde_json::Value;
use srank_service::{serve_tcp, Client, Engine, EngineConfig};
use std::sync::Arc;

fn obj(s: &str) -> Value {
    serde_json::from_str(s).expect("test request is valid JSON")
}

/// A 2-worker engine with a cap-1 response queue — the most
/// contention-prone configuration that can still make progress.
fn tiny_pool_engine() -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        pool_workers: 2,
        stream_queue_cap: std::num::NonZeroUsize::new(1),
        ..EngineConfig::default()
    }))
}

/// Runs `clients` threads × `rounds` streamed batches of `subs`
/// sub-requests each over TCP, checking completeness per batch; plus one
/// in-process slow-sink streamer on the same engine to force observable
/// backpressure. Returns the final `stats.pool` section.
fn hammer(engine: &Arc<Engine>, clients: usize, rounds: usize, subs: usize) -> Value {
    let mut server = serve_tcp(Arc::clone(engine), "127.0.0.1:0", clients.max(2)).expect("bind");
    let addr = server.addr();

    let mut setup = Client::connect(addr).expect("connect");
    setup
        .call_ok(&obj(
            r#"{"op": "registry.load", "dataset": "h", "builtin": "figure1"}"#,
        ))
        .expect("load");

    // Sub-request mix: cacheable verifies, pings, and one guaranteed
    // error per batch (errors must not poison siblings under load).
    let batch_line = |round: usize| {
        let subs: Vec<String> = (0..subs)
            .map(|i| match i % 3 {
                0 => format!(
                    r#"{{"id": {i}, "op": "verify", "dataset": "h", "weights": [1, {}]}}"#,
                    1 + (round + i) % 5
                ),
                1 => format!(r#"{{"id": {i}, "op": "ping"}}"#),
                _ if i == 2 => format!(
                    r#"{{"id": {i}, "op": "verify", "dataset": "ghost", "weights": [1, 1]}}"#
                ),
                _ => format!(r#"{{"id": {i}, "op": "stats"}}"#),
            })
            .collect();
        format!(
            r#"{{"op": "batch", "stream": true, "requests": [{}]}}"#,
            subs.join(", ")
        )
    };

    std::thread::scope(|s| {
        // TCP clients: full streamed batches, indexes checked complete.
        for t in 0..clients {
            let batch_line = &batch_line;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..rounds {
                    let request = obj(&batch_line(round + t));
                    let mut seen = vec![false; subs];
                    let terminal = client
                        .call_streamed(&request, |envelope| {
                            let index = envelope
                                .get("stream")
                                .and_then(|s| s.get("index"))
                                .and_then(Value::as_u64)
                                .expect("streamed envelope carries an index")
                                as usize;
                            assert!(!seen[index], "client {t}: index {index} twice");
                            seen[index] = true;
                        })
                        .expect("stream completes");
                    assert!(
                        seen.iter().all(|&s| s),
                        "client {t} round {round}: envelopes missing"
                    );
                    let result = terminal.get("result").expect("terminal summary");
                    assert_eq!(
                        result.get("count").and_then(Value::as_u64),
                        Some(subs as u64)
                    );
                    assert!(result.get("errors").and_then(Value::as_u64) >= Some(1));
                }
            });
        }
        // One in-process streamer with a deliberately slow sink: with a
        // cap-1 response queue the workers must block pushing — the
        // backpressure the stats assertion below observes.
        s.spawn(|| {
            let engine = Arc::clone(engine);
            for round in 0..rounds {
                let mut emitted = 0usize;
                engine
                    .handle_line_streamed(&batch_line(round), &mut |payload| {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        // One sink call may carry a coalesced burst of
                        // newline-joined envelope lines — count lines,
                        // not calls.
                        emitted += payload.split('\n').count();
                        Ok(())
                    })
                    .expect("in-memory sink never fails");
                assert_eq!(emitted, subs + 1, "subs + terminal");
            }
        });
    });

    let stats = setup.call_ok(&obj(r#"{"op": "stats"}"#)).expect("stats");
    server.shutdown();
    stats.get("pool").expect("pool stats").clone()
}

#[test]
fn two_worker_pool_survives_concurrent_streamed_batches() {
    let engine = tiny_pool_engine();
    let pool = hammer(&engine, 4, 4, 12);
    assert_eq!(
        pool.get("threads_spawned").and_then(Value::as_u64),
        Some(2),
        "a 2-worker pool must never grow under load"
    );
    assert!(
        pool.get("backpressure_waits").and_then(Value::as_u64) > Some(0),
        "the cap-1 response queue must have blocked a worker: {}",
        serde_json::to_string(&pool).unwrap()
    );
    // Quiescent at the end: everything submitted was completed.
    assert_eq!(
        pool.get("submitted").and_then(Value::as_u64),
        pool.get("completed").and_then(Value::as_u64)
    );
    assert_eq!(pool.get("queue_depth").and_then(Value::as_u64), Some(0));
    assert_eq!(pool.get("executing").and_then(Value::as_u64), Some(0));
}

/// The heavyweight variant for `scripts/check.sh --stress`: more
/// clients, rounds, and maximal (64-sub) batches. Ignored by default —
/// it takes tens of seconds in debug builds.
#[test]
#[ignore = "heavy; run via scripts/check.sh --stress"]
fn stress_heavy_streaming_pipeline_on_a_two_worker_pool() {
    let engine = tiny_pool_engine();
    let pool = hammer(&engine, 8, 8, 64);
    assert_eq!(pool.get("threads_spawned").and_then(Value::as_u64), Some(2));
    assert_eq!(
        pool.get("submitted").and_then(Value::as_u64),
        pool.get("completed").and_then(Value::as_u64)
    );
    assert!(pool.get("backpressure_waits").and_then(Value::as_u64) > Some(0));
}
