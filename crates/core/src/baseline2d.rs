//! Baseline 2-D enumeration by sorting all ordering-exchange angles.
//!
//! The classical alternative to the ray sweep of Algorithm 2: compute every
//! pairwise exchange angle inside the region of interest (`O(n²)` of them),
//! sort them, and read the ranking regions off the sorted sequence — the
//! boundaries of consecutive regions are exactly the distinct exchange
//! angles. Asymptotically the same `O(n² log n)` as the sweep but with a
//! much larger constant (it cannot exploit dominance-induced sparsity of
//! *adjacent* exchanges, and it ranks every region eagerly).
//!
//! It exists as an independently-implemented correctness oracle: the sweep
//! and this module must produce identical region structures, which the
//! cross-validation tests (and a criterion ablation) assert.

use crate::dataset::Dataset;
use crate::error::{Result, StableRankError};
use crate::sv2d::AngleInterval;
use crate::sweep2d::Region2DInfo;
use srank_geom::angle2d::{exchange_angle_2d, weight_from_angle_2d};

/// Enumerates the 2-D ranking regions of `interval` by exchange-angle
/// sorting. Returns regions in angle order, exactly like
/// [`Enumerator2D::regions`](crate::sweep2d::Enumerator2D::regions).
pub fn regions_via_sorted_exchanges(
    data: &Dataset,
    interval: AngleInterval,
) -> Result<Vec<Region2DInfo>> {
    if data.dim() != 2 {
        return Err(StableRankError::NeedTwoDimensions { got: data.dim() });
    }
    if data.is_empty() {
        return Err(StableRankError::EmptyDataset);
    }
    let n = data.len();
    // All pairwise exchange angles strictly inside the interval.
    let mut angles = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(theta) = exchange_angle_2d(data.item(i), data.item(j)) {
                if theta > interval.lo() && theta < interval.hi() {
                    angles.push(theta);
                }
            }
        }
    }
    angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
    angles.dedup();

    // Candidate boundaries partition the interval; merge consecutive cells
    // whose rankings coincide (an exchange angle between non-adjacent items
    // does not change the ranking there).
    let span = interval.span();
    let mut boundaries = Vec::with_capacity(angles.len() + 2);
    boundaries.push(interval.lo());
    boundaries.extend(angles);
    boundaries.push(interval.hi());

    let mut regions: Vec<Region2DInfo> = Vec::new();
    let mut prev_ranking = None;
    let mut current_lo = interval.lo();
    for cell in boundaries.windows(2) {
        let (lo, hi) = (cell[0], cell[1]);
        if hi - lo <= 0.0 {
            continue;
        }
        let mid = 0.5 * (lo + hi);
        let ranking = data.rank(&weight_from_angle_2d(mid)).expect("dim checked");
        match &prev_ranking {
            Some(prev) if *prev == ranking => {
                // Same ranking continues across this candidate boundary:
                // extend the open region.
            }
            _ => {
                if prev_ranking.is_some() {
                    regions.push(Region2DInfo {
                        lo: current_lo,
                        hi: lo,
                        stability: (lo - current_lo) / span,
                    });
                }
                current_lo = lo;
                prev_ranking = Some(ranking);
            }
        }
    }
    regions.push(Region2DInfo {
        lo: current_lo,
        hi: interval.hi(),
        stability: (interval.hi() - current_lo) / span,
    });
    Ok(regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep2d::Enumerator2D;

    fn lcg_rows(n: usize, mut state: u64) -> Vec<Vec<f64>> {
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| vec![next(), next()]).collect()
    }

    fn assert_same_regions(a: &[Region2DInfo], b: &[Region2DInfo]) {
        assert_eq!(a.len(), b.len(), "region counts differ");
        for (x, y) in a.iter().zip(b) {
            assert!((x.lo - y.lo).abs() < 1e-12, "lo: {} vs {}", x.lo, y.lo);
            assert!((x.hi - y.hi).abs() < 1e-12, "hi: {} vs {}", x.hi, y.hi);
            assert!((x.stability - y.stability).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_sweep_on_figure1() {
        let data = Dataset::figure1();
        let baseline = regions_via_sorted_exchanges(&data, AngleInterval::full()).unwrap();
        let sweep = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        assert_eq!(baseline.len(), 11);
        assert_same_regions(&baseline, sweep.regions());
    }

    #[test]
    fn matches_sweep_on_random_data() {
        for seed in [3u64, 17, 99, 12345] {
            let data = Dataset::from_rows(&lcg_rows(40, seed)).unwrap();
            let baseline = regions_via_sorted_exchanges(&data, AngleInterval::full()).unwrap();
            let sweep = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
            assert_same_regions(&baseline, sweep.regions());
        }
    }

    #[test]
    fn matches_sweep_on_narrow_interval() {
        let data = Dataset::from_rows(&lcg_rows(25, 7)).unwrap();
        let interval = AngleInterval::new(0.5, 0.9).unwrap();
        let baseline = regions_via_sorted_exchanges(&data, interval).unwrap();
        let sweep = Enumerator2D::new(&data, interval).unwrap();
        assert_same_regions(&baseline, sweep.regions());
    }

    #[test]
    fn merges_non_adjacent_exchanges() {
        // An exchange between items far apart in the ranking does not split
        // a region; counts must reflect merged cells, i.e. the number of
        // regions can be far below the number of exchange angles + 1.
        let data = Dataset::from_rows(&lcg_rows(30, 21)).unwrap();
        let mut raw_angles = 0;
        for i in 0..30 {
            for j in (i + 1)..30 {
                if exchange_angle_2d(data.item(i), data.item(j)).is_some() {
                    raw_angles += 1;
                }
            }
        }
        let regions = regions_via_sorted_exchanges(&data, AngleInterval::full()).unwrap();
        assert!(
            regions.len() <= raw_angles + 1,
            "{} regions vs {} exchanges",
            regions.len(),
            raw_angles
        );
        // Stabilities still partition the interval.
        let total: f64 = regions.iter().map(|r| r.stability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominance_chain_single_region() {
        let data = Dataset::from_rows(&[vec![0.9, 0.9], vec![0.5, 0.5], vec![0.1, 0.1]]).unwrap();
        let regions = regions_via_sorted_exchanges(&data, AngleInterval::full()).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].stability, 1.0);
    }

    #[test]
    fn rejects_non_2d() {
        let data = Dataset::from_rows(&[vec![0.1, 0.2, 0.3]]).unwrap();
        assert!(regions_via_sorted_exchanges(&data, AngleInterval::full()).is_err());
    }
}
