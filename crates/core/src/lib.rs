//! # srank-core — On Obtaining Stable Rankings
//!
//! A faithful implementation of the algorithms of *On Obtaining Stable
//! Rankings* (Asudeh, Jagadish, Miklau, Stoyanovich — PVLDB 12(3), 2018).
//!
//! Items are scored by a non-negative linear combination of their
//! attributes and ranked by score. The **stability** of a ranking is the
//! fraction of the space of scoring functions (optionally restricted to a
//! *region of interest* `U*`) that generates it — rankings with large
//! regions are robust to weight perturbations, rankings with thin regions
//! may be cherry-picked.
//!
//! ## The three problems, and where they live
//!
//! | Problem | 2-D (exact) | d ≥ 3 |
//! |---|---|---|
//! | Stability verification (Problem 1) | [`sv2d::stability_verify_2d`] — Algorithm 1, O(n) | [`svmd::stability_verify_md`] — Algorithm 4 + Monte-Carlo oracle |
//! | Batch enumeration (Problem 2) | [`sweep2d::Enumerator2D`] (`top_h`, `with_stability_at_least`) | [`getnext_md::MdEnumerator`] / [`randomized::RandomizedEnumerator`] |
//! | Iterative `GET-NEXT` (Problem 3) | [`sweep2d::Enumerator2D::get_next`] — Algorithms 2–3 | [`getnext_md::MdEnumerator::get_next`] — Algorithm 6; [`randomized::RandomizedEnumerator`] — Algorithms 7–8 |
//!
//! The randomized operator additionally supports the §2.2.5 top-k models
//! ([`randomized::RankingScope::TopKRanked`] and
//! [`randomized::RankingScope::TopKSet`]), which the arrangement-based
//! operator cannot (different regions share top-k items).
//!
//! ## Quick start
//!
//! ```
//! use srank_core::prelude::*;
//!
//! // The paper's Figure 1 database of five candidates.
//! let data = Dataset::figure1();
//!
//! // Consumer: how stable is the ranking published under f = x1 + x2?
//! let published = data.rank(&[1.0, 1.0]).unwrap();
//! let verified = stability_verify_2d(&data, &published, AngleInterval::full())
//!     .unwrap()
//!     .expect("the published ranking is feasible");
//! assert!(verified.stability > 0.0);
//!
//! // Producer: what is the most stable ranking overall?
//! let mut producer = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
//! let most_stable = producer.get_next().unwrap();
//! assert!(most_stable.stability >= verified.stability);
//! ```
//!
//! ## Long-lived sessions: detachable enumerator state
//!
//! The enumerators borrow their dataset (`&'a Dataset`), which suits
//! one-shot calls but not a server holding thousands of concurrent
//! producer sessions over `Arc`-shared datasets. Each enumerator
//! therefore exposes an owned, `Send + 'static` snapshot of its progress
//! — [`sweep2d::Sweep2DState`], [`getnext_md::MdState`],
//! [`randomized::RandomizedState`] — via O(1) `into_state` /
//! `from_state` conversions:
//!
//! ```
//! use srank_core::prelude::*;
//!
//! let data = std::sync::Arc::new(Dataset::figure1());
//! // Construction (the ray sweep) happens once…
//! let session = Enumerator2D::new(&data, AngleInterval::full())
//!     .unwrap()
//!     .into_state(); // …then the state outlives any borrow.
//!
//! // Later (another request, possibly another thread): reattach,
//! // advance, detach.
//! let mut e = Enumerator2D::from_state(&data, session).unwrap();
//! let best = e.get_next().unwrap();
//! let session = e.into_state();
//! assert!(best.stability > 0.0);
//! assert_eq!(session.remaining(), 10, "one of 11 regions consumed");
//! ```
//!
//! `srank-service` builds its session manager on exactly this: the
//! expensive construction (ray sweep, `×hps` harvest, sample partition)
//! runs at `session.open`, and every `session.get_next` reattaches,
//! pops, and detaches. `from_state` re-validates the dataset's *shape*
//! (dimension and item count) — equal-shape datasets with different
//! contents cannot be told apart, so callers that swap datasets must
//! track identity themselves, as `srank-service` does with registry
//! generation stamps.

pub mod baseline2d;
pub mod dataset;
pub mod error;
pub mod getnext_md;
pub mod intern;
pub mod justify;
pub mod overview;
pub mod randomized;
pub mod ranking;
pub mod scoring;
pub mod sv2d;
pub mod svmd;
pub mod sweep2d;
pub mod topk2d;
pub mod xhps;

pub use baseline2d::regions_via_sorted_exchanges;
pub use dataset::Dataset;
pub use error::{Result, StableRankError};
pub use getnext_md::{MdEnumerator, MdState, PassThroughMode, StableRankingMd};
pub use intern::KeyInterner;
pub use justify::{max_margin_weights, MaxMarginWeights};
pub use overview::{most_tau_stable, tau_tolerant_stability, StabilityOverview};
pub use randomized::{DiscoveredRanking, RandomizedEnumerator, RandomizedState, RankingScope};
pub use ranking::{ItemMove, Ranking, TopKRanked, TopKSet};
pub use scoring::ScoringFunction;
pub use sv2d::{stability_verify_2d, AngleInterval, Verified2D};
pub use svmd::{ranking_region_md, stability_verify_3d_exact, stability_verify_md, VerifiedMd};
pub use sweep2d::{Enumerator2D, Region2DInfo, StableRanking2D, Sweep2DState};
pub use topk2d::{top_k_ranked_stabilities_2d, top_k_set_stabilities_2d};
pub use xhps::ordering_exchange_hyperplanes;

/// The shared JSON-value serialization vocabulary used by the durable
/// state snapshots (`Sweep2DState::to_value` & co.) — re-exported from
/// `srank-sample`, where the primitive codecs live.
pub use srank_sample::persist;

/// Everything a typical caller needs.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::error::{Result, StableRankError};
    pub use crate::getnext_md::{MdEnumerator, PassThroughMode, StableRankingMd};
    pub use crate::justify::{max_margin_weights, MaxMarginWeights};
    pub use crate::overview::{most_tau_stable, tau_tolerant_stability, StabilityOverview};
    pub use crate::randomized::{DiscoveredRanking, RandomizedEnumerator, RankingScope};
    pub use crate::ranking::{ItemMove, Ranking, TopKRanked, TopKSet};
    pub use crate::scoring::ScoringFunction;
    pub use crate::sv2d::{stability_verify_2d, AngleInterval, Verified2D};
    pub use crate::svmd::{stability_verify_3d_exact, stability_verify_md, VerifiedMd};
    pub use crate::sweep2d::{Enumerator2D, StableRanking2D};
    pub use crate::topk2d::{top_k_ranked_stabilities_2d, top_k_set_stabilities_2d};
    pub use srank_sample::roi::RegionOfInterest;
}
