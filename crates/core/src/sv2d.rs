//! Two-dimensional stability verification — `SV2D`, Algorithm 1 (§3.1).
//!
//! In 2-D a ranking region is a contiguous angle interval: each adjacent
//! pair of the ranking contributes at most one ordering-exchange angle
//! (Eq. 6) that either raises the lower bound or lowers the upper bound.
//! One O(n) pass over the ranked list therefore pins the region exactly.

use crate::dataset::Dataset;
use crate::error::{Result, StableRankError};
use crate::ranking::Ranking;
use srank_geom::angle2d::exchange_angle_2d;
use std::f64::consts::FRAC_PI_2;

/// A closed angle interval `[lo, hi] ⊆ [0, π/2]` of 2-D scoring functions;
/// the 2-D form of a region of interest `U*`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AngleInterval {
    lo: f64,
    hi: f64,
}

impl AngleInterval {
    /// The full function space `U` (the first quadrant).
    pub fn full() -> Self {
        Self {
            lo: 0.0,
            hi: FRAC_PI_2,
        }
    }

    /// An explicit interval.
    ///
    /// # Errors
    /// Rejects intervals outside `[0, π/2]` or with `lo ≥ hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(0.0..=FRAC_PI_2 + 1e-12).contains(&lo)
            || !(0.0..=FRAC_PI_2 + 1e-12).contains(&hi)
            || lo >= hi
        {
            return Err(StableRankError::EmptyRegionOfInterest);
        }
        Ok(Self {
            lo,
            hi: hi.min(FRAC_PI_2),
        })
    }

    /// The cone "within `theta` of `ray`", clipped to the first quadrant —
    /// e.g. the paper's "0.998 cosine similarity around ⟨0.3, 0.7⟩".
    pub fn around(ray: &[f64], theta: f64) -> Result<Self> {
        if ray.len() != 2 {
            return Err(StableRankError::NeedTwoDimensions { got: ray.len() });
        }
        let center = ray[1].atan2(ray[0]);
        Self::new((center - theta).max(0.0), (center + theta).min(FRAC_PI_2))
    }

    pub fn lo(&self) -> f64 {
        self.lo
    }

    pub fn hi(&self) -> f64 {
        self.hi
    }

    pub fn span(&self) -> f64 {
        self.hi - self.lo
    }

    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    pub fn contains(&self, theta: f64) -> bool {
        (self.lo..=self.hi).contains(&theta)
    }
}

/// The verified region of a 2-D ranking: an angle interval plus its
/// stability relative to the region of interest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verified2D {
    /// `vol(R*(r)) / vol(U*)` — the span ratio in 2-D.
    pub stability: f64,
    /// The ranking's region `[lo, hi]` (already intersected with `U*`).
    pub region: AngleInterval,
}

/// Algorithm 1 (`SV2D`), generalized to an arbitrary 2-D region of
/// interest: computes the region and stability of `ranking`, or `None` when
/// no function in `interval` generates it.
///
/// Runs in O(n): a single scan over adjacent pairs.
///
/// # Errors
/// Fails if the dataset is not two-dimensional or the ranking does not
/// match the dataset.
pub fn stability_verify_2d(
    data: &Dataset,
    ranking: &Ranking,
    interval: AngleInterval,
) -> Result<Option<Verified2D>> {
    if data.dim() != 2 {
        return Err(StableRankError::NeedTwoDimensions { got: data.dim() });
    }
    if ranking.len() != data.len() {
        return Err(StableRankError::InvalidRanking(format!(
            "ranking has {} items, dataset has {}",
            ranking.len(),
            data.len()
        )));
    }
    let mut lo = interval.lo();
    let mut hi = interval.hi();
    for pair in ranking.order().windows(2) {
        let (i, j) = (pair[0] as usize, pair[1] as usize);
        let t = data.item(i);
        let u = data.item(j);
        if t == u {
            // Identical items are permanently tied; ∇f breaks the tie by
            // item index, so only the index order is generatable.
            if i < j {
                continue;
            }
            return Ok(None);
        }
        if data.dominates(i, j) {
            continue;
        }
        if data.dominates(j, i) {
            return Ok(None); // r ranks a dominated item above its dominator
        }
        let Some(theta) = exchange_angle_2d(t, u) else {
            // Attribute differences below the crate's geometric tolerance:
            // an effective tie. Only the index order is generatable (the
            // ranking tie-break), mirroring the identical-items case.
            if i < j {
                continue;
            }
            return Ok(None);
        };
        if t[0] < u[0] {
            // t outranks u only above the exchange.
            lo = lo.max(theta);
        } else {
            // t outranks u only below the exchange.
            hi = hi.min(theta);
        }
        if lo >= hi {
            return Ok(None);
        }
    }
    Ok(Some(Verified2D {
        stability: (hi - lo) / interval.span(),
        region: AngleInterval { lo, hi },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use srank_geom::angle2d::weight_from_angle_2d;
    use std::f64::consts::{FRAC_PI_4, PI};

    fn rank_at(data: &Dataset, theta: f64) -> Ranking {
        data.rank(&weight_from_angle_2d(theta)).unwrap()
    }

    #[test]
    fn region_contains_the_generating_angle() {
        let data = Dataset::figure1();
        for theta in [0.1, 0.4, FRAC_PI_4, 0.9, 1.3] {
            let r = rank_at(&data, theta);
            let v = stability_verify_2d(&data, &r, AngleInterval::full())
                .unwrap()
                .expect("observed ranking must be feasible");
            assert!(
                v.region.contains(theta),
                "θ = {theta} outside region [{}, {}]",
                v.region.lo(),
                v.region.hi()
            );
            assert!(v.stability > 0.0 && v.stability <= 1.0);
        }
    }

    #[test]
    fn every_angle_in_region_reproduces_the_ranking() {
        let data = Dataset::figure1();
        let r = rank_at(&data, FRAC_PI_4);
        let v = stability_verify_2d(&data, &r, AngleInterval::full())
            .unwrap()
            .unwrap();
        for i in 1..20 {
            let theta = v.region.lo() + v.region.span() * i as f64 / 20.0;
            if theta >= v.region.hi() {
                break;
            }
            assert_eq!(
                rank_at(&data, theta),
                r,
                "ranking changed inside its own region"
            );
        }
    }

    #[test]
    fn infeasible_ranking_returns_none() {
        let data = Dataset::figure1();
        // Reverse of the f = x1 ranking: puts the x1-smallest first AND the
        // x2-smallest last; infeasible in the quadrant.
        let r = Ranking::new(vec![4, 2, 0, 1, 3]).unwrap();
        // Actually verify against a genuinely infeasible ranking: take the
        // diagonal ranking and swap the top and bottom items.
        let feasible = rank_at(&data, FRAC_PI_4);
        let mut order = feasible.order().to_vec();
        order.swap(0, 4);
        let infeasible = Ranking::new(order).unwrap();
        assert!(
            stability_verify_2d(&data, &infeasible, AngleInterval::full())
                .unwrap()
                .is_none()
        );
        // And the constructed one above must match a dense scan's verdict.
        let scan_feasible = (0..2000)
            .map(|i| rank_at(&data, FRAC_PI_2 * (i as f64 + 0.5) / 2000.0))
            .any(|s| s == r);
        let sv = stability_verify_2d(&data, &r, AngleInterval::full()).unwrap();
        assert_eq!(sv.is_some(), scan_feasible);
    }

    #[test]
    fn dominated_above_dominator_is_rejected() {
        let data = Dataset::from_rows(&[vec![0.9, 0.9], vec![0.1, 0.1]]).unwrap();
        let bad = Ranking::new(vec![1, 0]).unwrap();
        assert!(stability_verify_2d(&data, &bad, AngleInterval::full())
            .unwrap()
            .is_none());
        let good = Ranking::new(vec![0, 1]).unwrap();
        let v = stability_verify_2d(&data, &good, AngleInterval::full())
            .unwrap()
            .unwrap();
        assert_eq!(v.stability, 1.0, "the dominance ranking is the only one");
    }

    #[test]
    fn identical_items_obey_index_tie_break() {
        let data = Dataset::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        let canonical = Ranking::new(vec![0, 1]).unwrap();
        let flipped = Ranking::new(vec![1, 0]).unwrap();
        assert!(
            stability_verify_2d(&data, &canonical, AngleInterval::full())
                .unwrap()
                .is_some()
        );
        assert!(stability_verify_2d(&data, &flipped, AngleInterval::full())
            .unwrap()
            .is_none());
    }

    #[test]
    fn stabilities_over_all_angles_sum_to_one() {
        let data = Dataset::figure1();
        // Collect distinct rankings by dense scan, verify each, and check
        // the partition property: stabilities sum to 1.
        let mut seen: Vec<Ranking> = Vec::new();
        for i in 0..5000 {
            let r = rank_at(&data, FRAC_PI_2 * (i as f64 + 0.5) / 5000.0);
            if !seen.contains(&r) {
                seen.push(r);
            }
        }
        // Figure 1c: exactly 11 regions.
        assert_eq!(seen.len(), 11, "Figure 1c promises 11 feasible rankings");
        let total: f64 = seen
            .iter()
            .map(|r| {
                stability_verify_2d(&data, r, AngleInterval::full())
                    .unwrap()
                    .expect("observed rankings are feasible")
                    .stability
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn narrower_interval_rescales_stability() {
        let data = Dataset::figure1();
        let r = rank_at(&data, FRAC_PI_4);
        let full = stability_verify_2d(&data, &r, AngleInterval::full())
            .unwrap()
            .unwrap();
        // A region of interest that strictly contains the ranking region.
        let roi = AngleInterval::new(
            (full.region.lo() - 0.05).max(0.0),
            (full.region.hi() + 0.05).min(FRAC_PI_2),
        )
        .unwrap();
        let scoped = stability_verify_2d(&data, &r, roi).unwrap().unwrap();
        assert!(scoped.stability > full.stability);
        let expected = full.region.span() / roi.span();
        assert!((scoped.stability - expected).abs() < 1e-9);
    }

    #[test]
    fn ranking_outside_interval_is_infeasible_there() {
        let data = Dataset::figure1();
        let r_low = rank_at(&data, 0.05);
        let v = stability_verify_2d(&data, &r_low, AngleInterval::full())
            .unwrap()
            .unwrap();
        // Ask about it in an interval strictly above its region.
        let above = AngleInterval::new((v.region.hi() + 0.01).min(1.5), 1.55).unwrap();
        assert!(stability_verify_2d(&data, &r_low, above).unwrap().is_none());
    }

    #[test]
    fn around_builds_clipped_cone() {
        let i = AngleInterval::around(&[1.0, 1.0], PI / 10.0).unwrap();
        assert!((i.lo() - (FRAC_PI_4 - PI / 10.0)).abs() < 1e-12);
        assert!((i.hi() - (FRAC_PI_4 + PI / 10.0)).abs() < 1e-12);
        // Near the axis the cone clips at 0.
        let edge = AngleInterval::around(&[1.0, 0.01], PI / 10.0).unwrap();
        assert_eq!(edge.lo(), 0.0);
    }

    #[test]
    fn dimension_and_arity_errors() {
        let data3 = Dataset::from_rows(&[vec![0.1, 0.2, 0.3], vec![0.3, 0.2, 0.1]]).unwrap();
        let r = Ranking::new(vec![0, 1]).unwrap();
        assert!(matches!(
            stability_verify_2d(&data3, &r, AngleInterval::full()),
            Err(StableRankError::NeedTwoDimensions { got: 3 })
        ));
        let data2 = Dataset::figure1();
        let short = Ranking::new(vec![0, 1]).unwrap();
        assert!(stability_verify_2d(&data2, &short, AngleInterval::full()).is_err());
    }
}
