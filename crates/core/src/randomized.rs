//! The randomized `GET-NEXT` operator — Algorithms 7 and 8 (§4.3–§4.5).
//!
//! Uniform samples from `U*` hit each ranking region with probability equal
//! to its stability, so counting which (partial) ranking each sampled
//! function induces simultaneously *discovers* rankings and *estimates*
//! their stability. Two budgets are supported:
//!
//! * **fixed budget** (Algorithm 7): spend `N` samples per call, return the
//!   most frequent not-yet-returned ranking with its Eq. 10 confidence
//!   error;
//! * **fixed confidence** (Algorithm 8): keep sampling until the estimate's
//!   confidence error drops to the requested `e` (with a sample cap so a
//!   caller can bound the work — exceeding it returns the best candidate
//!   with its achieved, larger error).
//!
//! Unlike the arrangement-based operator, this one supports the top-k
//! models of §2.2.5 directly: count ranked top-k prefixes or top-k sets
//! instead of complete rankings. Its per-sample cost is `O(n)` via
//! selection rather than a full sort, which is what makes the million-item
//! DoT experiment (Figure 18) tractable.
//!
//! ## The sampling hot path
//!
//! Throughput is the whole game here (Hall & Miller's bootstrap view of
//! ranking variability needs samples in bulk for tight estimates), so the
//! per-sample loop is built to do **zero steady-state heap allocations**:
//!
//! 1. the weight vector is sampled into a reusable scratch buffer
//!    ([`RoiSampler::sample_into`]);
//! 2. scores come from the columnar kernel and the ranking key from the
//!    bucket-scatter sort ([`Dataset::rank_into`]) or the packed top-k
//!    selection ([`Dataset::top_k_into_keyed`]), all into scratch buffers;
//! 3. the key is counted against a [`KeyInterner`]: a repeat observation
//!    bumps a counter after one hash of the scratch slice — the key is
//!    materialized into owned storage only the first time it is ever
//!    seen. (On scopes where almost every sample discovers a new ranking
//!    — e.g. the full scope over thousands of items — the arena still
//!    beats a `HashMap<Vec<u32>, _>`: one append to a flat buffer instead
//!    of a per-key allocation, and growth never re-hashes stored keys.)
//!
//! [`sample_n_parallel`](RandomizedEnumerator::sample_n_parallel) gives
//! each worker its own interner and merges the tables directly, and
//! [`observe_samples`](RandomizedEnumerator::observe_samples) feeds an
//! externally drawn (e.g. cached, shared) sample batch through the same
//! accumulator without re-keying or redrawing anything.

use crate::dataset::Dataset;
use crate::error::{Result, StableRankError};
use crate::intern::KeyInterner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srank_sample::confidence::confidence_error;
use srank_sample::roi::{RegionOfInterest, RoiSampler};
use srank_sample::store::SampleBuffer;

/// Which portion of the ranking defines "the same result" (§2.2.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankingScope {
    /// The complete ranking of all items.
    Full,
    /// The top-k items in order.
    TopKRanked(usize),
    /// The top-k items as a set.
    TopKSet(usize),
}

/// A ranking discovered by the randomized operator.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscoveredRanking {
    /// The item indices — ranked order for `Full`/`TopKRanked`, ascending
    /// index order for `TopKSet`.
    pub items: Vec<u32>,
    /// Which scope the key lives in.
    pub scope: RankingScope,
    /// Estimated stability `count / samples_used`.
    pub stability: f64,
    /// Eq. 10 confidence error at the enumerator's `alpha`.
    pub confidence_error: f64,
    /// Total samples the estimate is based on (all calls so far).
    pub samples_used: u64,
    /// A sampled weight vector that generated this (partial) ranking.
    pub exemplar_weights: Vec<f64>,
}

/// Reusable scoring workspace of one sampling thread: the sampled weight
/// vector, the score buffer, the packed sort keys, and the index/output
/// buffers of the ranking kernels. Steady-state sampling touches no other
/// memory besides the interner.
#[derive(Clone, Default)]
struct RankScratch {
    w: Vec<f64>,
    scores: Vec<f64>,
    keys: Vec<u64>,
    spare: Vec<u64>,
    idx: Vec<u32>,
    out: Vec<u32>,
}

impl RankScratch {
    /// Computes the counting key of `w` under `scope` into the scratch
    /// buffers and returns it as a slice — no owned key is materialized.
    /// For [`RankingScope::TopKSet`] the top-k buffer is sorted *in place*
    /// (it is scratch; the next sample overwrites it anyway).
    fn key_for(&mut self, data: &Dataset, scope: RankingScope, w: &[f64]) -> &[u32] {
        match scope {
            RankingScope::Full => {
                data.rank_into_keyed(
                    w,
                    &mut self.scores,
                    &mut self.keys,
                    &mut self.spare,
                    &mut self.idx,
                );
                &self.idx
            }
            RankingScope::TopKRanked(k) => {
                data.top_k_into_keyed(w, k, &mut self.scores, &mut self.keys, &mut self.out);
                &self.out
            }
            RankingScope::TopKSet(k) => {
                data.top_k_into_keyed(w, k, &mut self.scores, &mut self.keys, &mut self.out);
                self.out.sort_unstable();
                &self.out
            }
        }
    }
}

/// Key length of a scope over `n` items (fixed per enumeration — what
/// makes the fixed-stride interner possible).
fn key_len(scope: RankingScope, n: usize) -> usize {
    match scope {
        RankingScope::Full => n,
        RankingScope::TopKRanked(k) | RankingScope::TopKSet(k) => k.min(n),
    }
}

/// An owned, `Send + 'static` snapshot of a [`RandomizedEnumerator`]'s
/// accumulated counts, detached from the dataset borrow.
///
/// Detach with [`RandomizedEnumerator::into_state`], reattach with
/// [`RandomizedEnumerator::from_state`]; both are O(1) moves (the scoring
/// scratch buffers are dropped on detach and lazily regrown). The RNG is
/// *not* part of the state — callers that need reproducible continuation
/// keep their seeded `StdRng` alongside (as `srank-service` sessions do).
#[derive(Clone)]
pub struct RandomizedState {
    dim: usize,
    n_items: usize,
    scope: RankingScope,
    sampler: RoiSampler,
    alpha: f64,
    table: KeyInterner,
    total: u64,
    /// Per-entry "already returned" flags, parallel to the interner's
    /// entry ids (lazily grown; a missing index means not returned).
    returned: Vec<bool>,
    /// Rankings emitted (returned to a caller) over the enumeration's
    /// lifetime — a progress counter, distinct from `returned` flags
    /// inherited through `merge`.
    emitted: u64,
}

impl RandomizedState {
    /// Total samples accumulated so far.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Number of distinct (partial) rankings observed so far.
    pub fn distinct_observed(&self) -> usize {
        self.table.len()
    }

    /// Rankings emitted by `get_next_*` over the enumeration's lifetime.
    pub fn regions_emitted(&self) -> u64 {
        self.emitted
    }

    /// Serializes the accumulated counting state for durable storage:
    /// scope, sampler, interning table, and the returned flags. The RNG
    /// is not part of the state (it never was — see the type docs);
    /// callers persist their seeded generator alongside.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        use srank_sample::persist::obj;
        let (scope, k) = match self.scope {
            RankingScope::Full => ("full", 0usize),
            RankingScope::TopKRanked(k) => ("top-k-ranked", k),
            RankingScope::TopKSet(k) => ("top-k-set", k),
        };
        obj([
            ("dim", Value::Number(self.dim as f64)),
            ("n_items", Value::Number(self.n_items as f64)),
            ("scope", Value::String(scope.into())),
            ("k", Value::Number(k as f64)),
            ("sampler", self.sampler.to_value()),
            ("alpha", Value::Number(self.alpha)),
            ("table", self.table.to_value()),
            ("total", Value::Number(self.total as f64)),
            (
                "returned",
                Value::Array(self.returned.iter().map(|&b| Value::Bool(b)).collect()),
            ),
            ("emitted", Value::Number(self.emitted as f64)),
        ])
    }

    /// Rebuilds a state serialized by [`to_value`](Self::to_value).
    pub fn from_value(v: &serde_json::Value) -> srank_sample::persist::PersistResult<Self> {
        use srank_sample::persist::{
            array_field, f64_field, field, str_field, u64_field, usize_field, PersistError,
        };
        let dim = usize_field(v, "dim")?;
        let n_items = usize_field(v, "n_items")?;
        let k = usize_field(v, "k")?;
        let scope = match str_field(v, "scope")? {
            "full" => RankingScope::Full,
            "top-k-ranked" if k > 0 => RankingScope::TopKRanked(k),
            "top-k-set" if k > 0 => RankingScope::TopKSet(k),
            other => {
                return Err(PersistError::new(format!(
                    "bad ranking scope '{other}' (k = {k})"
                )))
            }
        };
        let sampler = RoiSampler::from_value(field(v, "sampler")?)?;
        let alpha = f64_field(v, "alpha")?;
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(PersistError::new(format!("alpha out of range: {alpha}")));
        }
        let table = KeyInterner::from_value(field(v, "table")?)?;
        if table.stride() != key_len(scope, n_items) || table.dim() != dim {
            return Err(PersistError::new(
                "interner stride/dim disagree with the scope and dataset shape",
            ));
        }
        let total = u64_field(v, "total")?;
        if total < table.iter().map(|(_, _, c, _)| c).sum::<u64>() {
            return Err(PersistError::new(
                "total samples below the interned observation count",
            ));
        }
        let returned = array_field(v, "returned")?
            .iter()
            .map(|b| {
                b.as_bool()
                    .ok_or_else(|| PersistError::new("'returned' must hold booleans"))
            })
            .collect::<srank_sample::persist::PersistResult<Vec<bool>>>()?;
        if returned.len() > table.len() {
            return Err(PersistError::new(
                "more returned flags than interned rankings",
            ));
        }
        // States persisted before the counter existed carry no "emitted"
        // field; they resume with the counter at 0 (progress reporting
        // restarts, enumeration correctness is untouched).
        let emitted = match field(v, "emitted") {
            Ok(_) => u64_field(v, "emitted")?,
            Err(_) => 0,
        };
        Ok(Self {
            dim,
            n_items,
            scope,
            sampler,
            alpha,
            table,
            total,
            returned,
            emitted,
        })
    }
}

/// The randomized `GET-NEXT` operator over a dataset and region of
/// interest.
///
/// Cloning checkpoints the accumulated counts (useful for benchmarks and
/// for exploring different continuation budgets from a shared prefix).
#[derive(Clone)]
pub struct RandomizedEnumerator<'a> {
    data: &'a Dataset,
    scope: RankingScope,
    sampler: RoiSampler,
    alpha: f64,
    table: KeyInterner,
    total: u64,
    returned: Vec<bool>,
    emitted: u64,
    // Reusable scoring workspace (hot path at n = 10⁶).
    scratch: RankScratch,
}

impl<'a> RandomizedEnumerator<'a> {
    /// Builds the operator. `alpha` is the significance level of reported
    /// confidence errors (0.05 → 95%).
    pub fn new(
        data: &'a Dataset,
        roi: &RegionOfInterest,
        scope: RankingScope,
        alpha: f64,
    ) -> Result<Self> {
        if roi.dim() != data.dim() {
            return Err(StableRankError::DimensionMismatch {
                expected: data.dim(),
                got: roi.dim(),
            });
        }
        if !(0.0..1.0).contains(&alpha) || alpha <= 0.0 {
            return Err(StableRankError::InvalidWeights(format!(
                "alpha must lie in (0, 1), got {alpha}"
            )));
        }
        match scope {
            RankingScope::TopKRanked(k) | RankingScope::TopKSet(k) if k == 0 => {
                return Err(StableRankError::InvalidRanking(
                    "top-k scope needs k ≥ 1".into(),
                ));
            }
            _ => {}
        }
        Ok(Self {
            data,
            scope,
            sampler: roi.sampler(),
            alpha,
            table: KeyInterner::new(key_len(scope, data.len()), data.dim()),
            total: 0,
            returned: Vec::new(),
            emitted: 0,
            scratch: RankScratch::default(),
        })
    }

    /// Detaches the accumulated counting state from the dataset borrow
    /// (see [`RandomizedState`]).
    pub fn into_state(self) -> RandomizedState {
        RandomizedState {
            dim: self.data.dim(),
            n_items: self.data.len(),
            scope: self.scope,
            sampler: self.sampler,
            alpha: self.alpha,
            table: self.table,
            total: self.total,
            returned: self.returned,
            emitted: self.emitted,
        }
    }

    /// Reattaches a detached state to its dataset.
    ///
    /// # Errors
    /// Fails when `data` disagrees with the dataset the state was
    /// accumulated over on dimension or item count (the cheap shape
    /// checks available).
    pub fn from_state(data: &'a Dataset, state: RandomizedState) -> Result<Self> {
        if state.dim != data.dim() {
            return Err(StableRankError::DimensionMismatch {
                expected: state.dim,
                got: data.dim(),
            });
        }
        if state.n_items != data.len() {
            return Err(StableRankError::DimensionMismatch {
                expected: state.n_items,
                got: data.len(),
            });
        }
        Ok(Self {
            data,
            scope: state.scope,
            sampler: state.sampler,
            alpha: state.alpha,
            table: state.table,
            total: state.total,
            returned: state.returned,
            emitted: state.emitted,
            scratch: RankScratch::default(),
        })
    }

    /// Total samples drawn so far (the paper's `N'`).
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Number of distinct (partial) rankings observed so far.
    pub fn distinct_observed(&self) -> usize {
        self.table.len()
    }

    /// Rankings emitted by `get_next_*` over the enumeration's lifetime
    /// (merging inherits the counter from both sides).
    pub fn regions_emitted(&self) -> u64 {
        self.emitted
    }

    /// The accumulated `(key, count, exemplar)` triples, in
    /// first-observation order — the raw counting distribution behind the
    /// stability estimates.
    pub fn observed(&self) -> impl Iterator<Item = (&[u32], u64, &[f64])> + '_ {
        self.table.iter().map(|(_, k, c, x)| (k, c, x))
    }

    /// Counts one already-sampled weight vector (the allocation-free core
    /// of every sampling flavour).
    #[inline]
    fn observe_weight(&mut self, w: &[f64]) {
        let key = self.scratch.key_for(self.data, self.scope, w);
        self.total += 1;
        self.table.observe(key, w);
    }

    /// Draws one sample and updates the counts.
    fn observe<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut w = std::mem::take(&mut self.scratch.w);
        self.sampler.sample_into(rng, &mut w);
        self.observe_weight(&w);
        self.scratch.w = w;
    }

    /// Draws `n` samples (shared by both operator flavours).
    pub fn sample_n<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) {
        for _ in 0..n {
            self.observe(rng);
        }
    }

    /// Feeds an externally drawn sample batch through the accumulator —
    /// the cached-batch path of `srank-service`: a shared Monte-Carlo
    /// buffer for this dataset/ROI counts into the interner directly,
    /// with no redrawing and no owned-key materialization for repeats.
    ///
    /// The caller is responsible for the batch being uniform draws from
    /// this enumerator's region of interest (feeding anything else biases
    /// every stability estimate).
    ///
    /// # Errors
    /// Fails when the batch dimension disagrees with the dataset.
    pub fn observe_samples(&mut self, batch: &SampleBuffer) -> Result<()> {
        if batch.dim() != self.data.dim() {
            return Err(StableRankError::DimensionMismatch {
                expected: self.data.dim(),
                got: batch.dim(),
            });
        }
        for i in 0..batch.len() {
            self.observe_weight(batch.row(i));
        }
        Ok(())
    }

    /// Draws `n` samples using `threads` worker threads and merges the
    /// counts — a drop-in accelerator for the large-`n` configurations of
    /// Figure 18 (sampling is embarrassingly parallel).
    ///
    /// Deterministic for a fixed `(base_seed, n, threads)` triple: worker
    /// `t` uses seed `base_seed + t` and a fixed share of the budget, and
    /// merging happens in worker order. The resulting sample *stream*
    /// differs from the sequential [`sample_n`](Self::sample_n) — both are
    /// uniform over `U*`, so all estimates converge to the same values.
    pub fn sample_n_parallel(&mut self, base_seed: u64, n: usize, threads: usize) {
        let threads = threads.clamp(1, n.max(1));
        if threads == 1 {
            let mut rng = StdRng::seed_from_u64(base_seed);
            self.sample_n(&mut rng, n);
            return;
        }
        let share = n / threads;
        let remainder = n % threads;
        let data = self.data;
        let scope = self.scope;
        let stride = self.table.stride();
        let sampler = &self.sampler;
        let locals: Vec<KeyInterner> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let budget = share + usize::from(t < remainder);
                    let sampler = sampler.clone();
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(t as u64));
                        let mut local = KeyInterner::new(stride, data.dim());
                        let mut scratch = RankScratch::default();
                        let mut w = Vec::new();
                        for _ in 0..budget {
                            sampler.sample_into(&mut rng, &mut w);
                            let key = scratch.key_for(data, scope, &w);
                            local.observe(key, &w);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sampler worker panicked"))
                .collect()
        });
        // Interned tables merge directly, in worker order: entries stream
        // out in each worker's first-observation order, so the merged
        // table (and every exemplar) is deterministic.
        for local in locals {
            for (_, key, count, exemplar) in local.iter() {
                self.table.add(key, count, exemplar);
            }
        }
        self.total += n as u64;
    }

    /// Merges another enumerator's accumulated counts into this one —
    /// the distributed-estimation pattern: sample on several machines (or
    /// checkpointed sessions) against the same dataset and region of
    /// interest, then combine. Rankings already returned by either side
    /// stay returned.
    ///
    /// # Errors
    /// Fails when the two enumerators disagree on scope (their keys would
    /// be incomparable).
    pub fn merge(&mut self, other: &RandomizedEnumerator<'_>) -> Result<()> {
        if self.scope != other.scope {
            return Err(StableRankError::InvalidRanking(
                "cannot merge enumerators with different ranking scopes".into(),
            ));
        }
        for (_, key, count, exemplar) in other.table.iter() {
            self.table.add(key, count, exemplar);
        }
        self.total += other.total;
        self.emitted += other.emitted;
        for (e, &returned) in other.returned.iter().enumerate() {
            if returned {
                let here = self
                    .table
                    .lookup(other.table.key(e as u32))
                    .expect("counts were merged above");
                self.mark_returned(here);
            }
        }
        Ok(())
    }

    fn mark_returned(&mut self, e: u32) {
        if self.returned.len() <= e as usize {
            self.returned.resize(e as usize + 1, false);
        }
        self.returned[e as usize] = true;
    }

    fn is_returned(&self, e: u32) -> bool {
        self.returned.get(e as usize).copied().unwrap_or(false)
    }

    /// The most frequent not-yet-returned entry, ties broken by key order
    /// for determinism (smallest key wins, as under the map-based
    /// accumulator).
    fn best_candidate(&self) -> Option<u32> {
        let mut best: Option<u32> = None;
        for e in 0..self.table.len() as u32 {
            if self.is_returned(e) {
                continue;
            }
            best = Some(match best {
                None => e,
                Some(b) => {
                    let (cb, ce) = (self.table.count(b), self.table.count(e));
                    if ce > cb || (ce == cb && self.table.key(e) < self.table.key(b)) {
                        e
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    fn emit(&mut self, e: u32) -> DiscoveredRanking {
        let stability = self.table.count(e) as f64 / self.total as f64;
        let err = confidence_error(stability, self.total as usize, self.alpha);
        let out = DiscoveredRanking {
            items: self.table.key(e).to_vec(),
            scope: self.scope,
            stability,
            confidence_error: err,
            samples_used: self.total,
            exemplar_weights: self.table.exemplar(e).to_vec(),
        };
        self.mark_returned(e);
        self.emitted += 1;
        out
    }

    /// Algorithm 7 — fixed budget: draw `budget` fresh samples, then return
    /// the most frequent undiscovered ranking (`None` if every observed
    /// ranking has already been returned).
    pub fn get_next_budget<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        budget: usize,
    ) -> Option<DiscoveredRanking> {
        self.sample_n(rng, budget);
        let e = self.best_candidate()?;
        Some(self.emit(e))
    }

    /// Algorithm 8 — fixed confidence: sample until the best undiscovered
    /// ranking's Eq. 10 error is at most `e`, or `max_samples` additional
    /// samples have been spent. In the capped case the best candidate is
    /// returned with its achieved (larger) error; callers detect the cap
    /// by `confidence_error > e`. Returns `None` only when no undiscovered
    /// ranking is ever observed.
    pub fn get_next_confidence<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        e: f64,
        max_samples: usize,
    ) -> Option<DiscoveredRanking> {
        assert!(e > 0.0, "get_next_confidence: need e > 0");
        // Eq. 10 estimates the Bernoulli variance from the sample mean, so
        // it degenerates to zero width at m ∈ {0, 1}; insist on a CLT-scale
        // sample count before trusting the interval.
        const MIN_SAMPLES: u64 = 30;
        let mut spent = 0usize;
        loop {
            if self.total >= MIN_SAMPLES {
                if let Some(entry) = self.best_candidate() {
                    let m = self.table.count(entry) as f64 / self.total as f64;
                    let err = confidence_error(m, self.total as usize, self.alpha);
                    if err <= e {
                        return Some(self.emit(entry));
                    }
                }
            }
            if spent >= max_samples {
                let entry = self.best_candidate()?;
                return Some(self.emit(entry));
            }
            self.observe(rng);
            spent += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sv2d::{stability_verify_2d, AngleInterval};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lcg_rows(n: usize, d: usize, mut state: u64) -> Vec<Vec<f64>> {
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
    }

    #[test]
    fn full_scope_matches_exact_2d_stability() {
        let data = Dataset::figure1();
        let roi = RegionOfInterest::full(2);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let top = e.get_next_budget(&mut rng, 50_000).unwrap();
        let ranking = crate::ranking::Ranking::new(top.items.clone()).unwrap();
        let exact = stability_verify_2d(&data, &ranking, AngleInterval::full())
            .unwrap()
            .expect("discovered ranking must be feasible")
            .stability;
        assert!(
            (top.stability - exact).abs() < 3.0 * top.confidence_error.max(0.005),
            "estimate {} vs exact {}",
            top.stability,
            exact
        );
    }

    #[test]
    fn successive_calls_return_distinct_rankings_with_decreasing_counts() {
        let data = Dataset::from_rows(&lcg_rows(10, 3, 5)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let first = e.get_next_budget(&mut rng, 5000).unwrap();
        let second = e.get_next_budget(&mut rng, 1000).unwrap();
        let third = e.get_next_budget(&mut rng, 1000).unwrap();
        assert_ne!(first.items, second.items);
        assert_ne!(second.items, third.items);
        assert_ne!(first.items, third.items);
    }

    #[test]
    fn exemplar_weights_reproduce_the_key() {
        let data = Dataset::from_rows(&lcg_rows(30, 3, 9)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut e =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(5), 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let d = e.get_next_budget(&mut rng, 2000).unwrap();
        let reproduced = data.top_k(&d.exemplar_weights, 5).unwrap();
        assert_eq!(reproduced, d.items);
    }

    #[test]
    fn set_scope_is_order_insensitive() {
        let data = Dataset::from_rows(&lcg_rows(30, 3, 13)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(4);

        let mut ranked =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(5), 0.05).unwrap();
        ranked.sample_n(&mut rng, 4000);
        let mut set =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(5), 0.05).unwrap();
        let mut rng2 = StdRng::seed_from_u64(4);
        set.sample_n(&mut rng2, 4000);

        // Fewer distinct outcomes under the set model, and the most stable
        // set is at least as stable as the most stable ranked prefix
        // (§6.3's observation on Figures 17/20).
        assert!(set.distinct_observed() <= ranked.distinct_observed());
        let best_set = set.get_next_budget(&mut rng2, 0).unwrap();
        let best_ranked = ranked.get_next_budget(&mut rng, 0).unwrap();
        assert!(best_set.stability >= best_ranked.stability - 1e-9);
        // Set keys are sorted.
        let mut sorted = best_set.items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, best_set.items);
    }

    #[test]
    fn fixed_confidence_meets_the_requested_error() {
        let data = Dataset::figure1();
        let roi = RegionOfInterest::full(2);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let d = e.get_next_confidence(&mut rng, 0.01, 2_000_000).unwrap();
        assert!(d.confidence_error <= 0.01, "err = {}", d.confidence_error);
        // Theorem-2 sanity: sample cost is of order 1/S plus CI cost.
        assert!(d.samples_used >= 10);
    }

    #[test]
    fn capped_confidence_reports_achieved_error() {
        let data = Dataset::from_rows(&lcg_rows(10, 3, 17)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        // Absurdly tight error with a tiny cap: must return a capped result.
        let d = e.get_next_confidence(&mut rng, 1e-9, 500).unwrap();
        assert!(d.confidence_error > 1e-9);
        assert_eq!(d.samples_used, 500);
    }

    #[test]
    fn exhausting_all_rankings_returns_none() {
        // Two items, one exchange: at most 2 distinct rankings.
        let data = Dataset::from_rows(&[vec![0.8, 0.2], vec![0.3, 0.9]]).unwrap();
        let roi = RegionOfInterest::full(2);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(e.get_next_budget(&mut rng, 1000).is_some());
        assert!(e.get_next_budget(&mut rng, 1000).is_some());
        assert!(e.get_next_budget(&mut rng, 1000).is_none());
    }

    #[test]
    fn stability_estimates_sum_to_one_over_all_rankings() {
        let data = Dataset::from_rows(&lcg_rows(6, 3, 29)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        e.sample_n(&mut rng, 20_000);
        let mut total = 0.0;
        while let Some(d) = e.get_next_budget(&mut rng, 0) {
            total += d.stability;
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "counted mass must be exhaustive: {total}"
        );
    }

    #[test]
    fn narrow_cone_roi_samples_stay_inside() {
        let data = Dataset::from_rows(&lcg_rows(20, 4, 31)).unwrap();
        let roi = RegionOfInterest::cone(&[1.0, 0.5, 0.3, 0.2], std::f64::consts::PI / 100.0);
        let mut e =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(10), 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let d = e.get_next_budget(&mut rng, 2000).unwrap();
        assert!(roi.contains(&d.exemplar_weights));
    }

    #[test]
    fn constructor_validation() {
        let data = Dataset::figure1();
        let roi3 = RegionOfInterest::full(3);
        assert!(RandomizedEnumerator::new(&data, &roi3, RankingScope::Full, 0.05).is_err());
        let roi2 = RegionOfInterest::full(2);
        assert!(RandomizedEnumerator::new(&data, &roi2, RankingScope::TopKSet(0), 0.05).is_err());
        assert!(RandomizedEnumerator::new(&data, &roi2, RankingScope::Full, 0.0).is_err());
        assert!(RandomizedEnumerator::new(&data, &roi2, RankingScope::Full, 1.0).is_err());
    }

    #[test]
    fn merge_combines_counts_and_returned_sets() {
        let data = Dataset::from_rows(&lcg_rows(12, 3, 81)).unwrap();
        let roi = RegionOfInterest::full(3);
        let make = |seed: u64, n: usize| {
            let mut op =
                RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(4), 0.05).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            op.sample_n(&mut rng, n);
            op
        };
        let mut a = make(1, 3000);
        let b = make(2, 2000);
        // The merged estimate equals counting over the union stream.
        a.merge(&b).unwrap();
        assert_eq!(a.total_samples(), 5000);
        let mut rng = StdRng::seed_from_u64(3);
        let merged_best = a.get_next_budget(&mut rng, 0).unwrap();

        // Single enumerator over both streams (same seeds, same budgets).
        let mut combined =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(4), 0.05).unwrap();
        let mut r1 = StdRng::seed_from_u64(1);
        combined.sample_n(&mut r1, 3000);
        let mut r2 = StdRng::seed_from_u64(2);
        combined.sample_n(&mut r2, 2000);
        let mut rng2 = StdRng::seed_from_u64(3);
        let combined_best = combined.get_next_budget(&mut rng2, 0).unwrap();
        assert_eq!(merged_best.items, combined_best.items);
        assert_eq!(merged_best.stability, combined_best.stability);
    }

    #[test]
    fn merge_rejects_scope_mismatch() {
        let data = Dataset::from_rows(&lcg_rows(6, 3, 83)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut a = RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(3), 0.05).unwrap();
        let b = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_preserves_returned_rankings() {
        let data = Dataset::from_rows(&lcg_rows(8, 3, 85)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut a = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let first = a.get_next_budget(&mut rng, 2000).unwrap();
        let mut b = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng_b = StdRng::seed_from_u64(5);
        b.sample_n(&mut rng_b, 2000);
        b.merge(&a).unwrap();
        // The ranking `a` already returned must not come back from `b`.
        while let Some(d) = b.get_next_budget(&mut rng_b, 0) {
            assert_ne!(
                d.items, first.items,
                "returned ranking re-emitted after merge"
            );
        }
    }

    #[test]
    fn parallel_sampling_merges_counts_exactly() {
        let data = Dataset::from_rows(&lcg_rows(20, 3, 61)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut op =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(5), 0.05).unwrap();
        op.sample_n_parallel(99, 4003, 4);
        assert_eq!(op.total_samples(), 4003);
        // All counts sum to the total.
        let mut total = 0.0;
        let mut rng = StdRng::seed_from_u64(0);
        while let Some(d) = op.get_next_budget(&mut rng, 0) {
            total += d.stability;
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_sampling_is_deterministic() {
        let data = Dataset::from_rows(&lcg_rows(15, 3, 67)).unwrap();
        let roi = RegionOfInterest::full(3);
        let run = || {
            let mut op =
                RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(4), 0.05).unwrap();
            op.sample_n_parallel(7, 2000, 3);
            let mut rng = StdRng::seed_from_u64(1);
            op.get_next_budget(&mut rng, 0).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.items, b.items);
        assert_eq!(a.stability, b.stability);
    }

    #[test]
    fn parallel_and_sequential_agree_statistically() {
        // Different streams, same distribution: top-set estimates within
        // combined confidence error.
        let data = Dataset::from_rows(&lcg_rows(12, 3, 71)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut seq =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(3), 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        seq.sample_n(&mut rng, 20_000);
        let mut par =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(3), 0.01).unwrap();
        par.sample_n_parallel(5, 20_000, 8);
        let mut rng2 = StdRng::seed_from_u64(6);
        let a = seq.get_next_budget(&mut rng, 0).unwrap();
        let b = par.get_next_budget(&mut rng2, 0).unwrap();
        assert_eq!(a.items, b.items, "both must find the same most stable set");
        assert!(
            (a.stability - b.stability).abs() <= 3.0 * (a.confidence_error + b.confidence_error),
            "{} vs {}",
            a.stability,
            b.stability
        );
    }

    #[test]
    fn detached_state_resumes_exactly_where_it_left_off() {
        let data = Dataset::from_rows(&lcg_rows(10, 3, 55)).unwrap();
        let roi = RegionOfInterest::full(3);
        let run = |detach: bool| {
            let mut op = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            let mut out = Vec::new();
            for _ in 0..4 {
                if detach {
                    op = RandomizedEnumerator::from_state(&data, op.into_state()).unwrap();
                }
                if let Some(d) = op.get_next_budget(&mut rng, 800) {
                    out.push((d.items, d.stability));
                }
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn emitted_counter_tracks_returns_and_survives_persistence() {
        let data = Dataset::from_rows(&lcg_rows(10, 3, 41)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(e.regions_emitted(), 0);
        e.get_next_budget(&mut rng, 2000).unwrap();
        e.get_next_budget(&mut rng, 500).unwrap();
        assert_eq!(e.regions_emitted(), 2);

        // Round-trips through the persisted form.
        let state = e.into_state();
        assert_eq!(state.regions_emitted(), 2);
        let restored = RandomizedState::from_value(&state.to_value()).unwrap();
        assert_eq!(restored.regions_emitted(), 2);

        // A state persisted before the counter existed (no "emitted"
        // field) still restores, with the counter reset to 0.
        let serde_json::Value::Object(mut fields) = state.to_value() else {
            panic!("state serializes to an object");
        };
        fields.retain(|(k, _)| k != "emitted");
        let legacy = RandomizedState::from_value(&serde_json::Value::Object(fields)).unwrap();
        assert_eq!(legacy.regions_emitted(), 0);
        assert_eq!(legacy.total_samples(), 2500);
    }

    #[test]
    fn from_state_rejects_dimension_mismatch() {
        let data = Dataset::from_rows(&lcg_rows(6, 3, 57)).unwrap();
        let roi = RegionOfInterest::full(3);
        let op = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
        let state = op.into_state();
        assert_eq!(state.total_samples(), 0);
        let other = Dataset::figure1();
        assert!(RandomizedEnumerator::from_state(&other, state).is_err());
    }

    /// §2.2.5's toy example: the most stable top-3 *set* is {t2, t3, t4},
    /// not a skyline subset ({t1, t2, t5} is the skyline).
    #[test]
    fn paper_toy_example_stable_top3_vs_skyline() {
        let data = Dataset::from_rows(&[
            vec![1.0, 0.0],
            vec![0.99, 0.99],
            vec![0.98, 0.98],
            vec![0.97, 0.97],
            vec![0.0, 1.0],
        ])
        .unwrap();
        let roi = RegionOfInterest::full(2);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(3), 0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let best = e.get_next_budget(&mut rng, 20_000).unwrap();
        assert_eq!(
            best.items,
            vec![1, 2, 3],
            "most stable top-3 must be {{t2,t3,t4}}"
        );
        let skyline = srank_geom::dominance::skyline_bnl(
            &(0..5).map(|i| data.item(i).to_vec()).collect::<Vec<_>>(),
        );
        assert_eq!(skyline, vec![0, 1, 4], "while the skyline is {{t1,t2,t5}}");
    }
}
