//! Multi-dimensional stability verification — `SV`, Algorithm 4 (§4.1).
//!
//! The region of a ranking `r` is the open cone intersecting one strict
//! half-space per adjacent pair (Eq. 7): every function in the cone
//! generates `r` and no function outside does. Volumes of such cones are
//! #P-hard to compute exactly, so stability is estimated by the
//! Monte-Carlo oracle of §5.3 over samples drawn from `U*`.

use crate::dataset::Dataset;
use crate::error::{Result, StableRankError};
use crate::ranking::Ranking;
use srank_geom::hyperplane::HalfSpace;
use srank_geom::region::ConeRegion;
use srank_sample::oracle::estimate_stability;
use srank_sample::store::SampleBuffer;

/// The verified region of a ranking in `d ≥ 2` dimensions.
#[derive(Clone, Debug)]
pub struct VerifiedMd {
    /// Monte-Carlo estimate of `vol(R*(r)) / vol(U*)`.
    pub stability: f64,
    /// The ranking region as an intersection of strict half-spaces (not
    /// including the `U*` constraints themselves).
    pub region: ConeRegion,
}

/// Builds the ranking region of `r`: one positive half-space per adjacent
/// non-dominating pair. Returns `None` when `r` is infeasible (it ranks a
/// dominated item above its dominator, or breaks the identical-item
/// tie-break).
///
/// # Errors
/// Fails when the ranking does not match the dataset.
pub fn ranking_region_md(data: &Dataset, ranking: &Ranking) -> Result<Option<ConeRegion>> {
    if ranking.len() != data.len() {
        return Err(StableRankError::InvalidRanking(format!(
            "ranking has {} items, dataset has {}",
            ranking.len(),
            data.len()
        )));
    }
    let mut region = ConeRegion::full(data.dim());
    for pair in ranking.order().windows(2) {
        let (i, j) = (pair[0] as usize, pair[1] as usize);
        let t = data.item(i);
        let u = data.item(j);
        if t == u {
            if i < j {
                continue; // permanent tie in canonical index order
            }
            return Ok(None);
        }
        if data.dominates(i, j) {
            continue;
        }
        if data.dominates(j, i) {
            return Ok(None);
        }
        region.push(HalfSpace::ranking_pair(t, u));
    }
    Ok(Some(region))
}

/// Algorithm 4: the region and stability of `ranking`, estimated against
/// `samples` drawn uniformly from the region of interest.
///
/// Cost: O(n) region construction plus the oracle's O(n·|S|).
pub fn stability_verify_md(
    data: &Dataset,
    ranking: &Ranking,
    samples: &SampleBuffer,
) -> Result<Option<VerifiedMd>> {
    if samples.dim() != data.dim() {
        return Err(StableRankError::DimensionMismatch {
            expected: data.dim(),
            got: samples.dim(),
        });
    }
    let Some(region) = ranking_region_md(data, ranking)? else {
        return Ok(None);
    };
    let stability = estimate_stability(&region, samples);
    Ok(Some(VerifiedMd { stability, region }))
}

/// Exact stability verification for three-attribute datasets, with `U* = U`
/// (the full orthant): the ranking region's spherical-polygon area by
/// Girard's theorem instead of Monte-Carlo estimation.
///
/// The paper leaves `d ≥ 3` to sampling because general polyhedron volume
/// is #P-hard; `d = 3` is the one multi-dimensional case with a clean
/// closed form, and it doubles as the calibration ground truth for the
/// sampling oracle.
pub fn stability_verify_3d_exact(data: &Dataset, ranking: &Ranking) -> Result<Option<VerifiedMd>> {
    if data.dim() != 3 {
        return Err(StableRankError::DimensionMismatch {
            expected: 3,
            got: data.dim(),
        });
    }
    let Some(region) = ranking_region_md(data, ranking)? else {
        return Ok(None);
    };
    let stability = srank_geom::solid_angle::exact_stability_3d(&region)
        .expect("region dimension checked above");
    Ok(Some(VerifiedMd { stability, region }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sv2d::{stability_verify_2d, AngleInterval};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srank_sample::sphere::sample_orthant_direction;

    fn orthant_samples(seed: u64, n: usize, d: usize) -> SampleBuffer {
        let mut rng = StdRng::seed_from_u64(seed);
        SampleBuffer::generate(&mut rng, n, |r| sample_orthant_direction(r, d))
    }

    fn lcg_rows(n: usize, d: usize, mut state: u64) -> Vec<Vec<f64>> {
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
    }

    #[test]
    fn region_contains_its_generator() {
        let data = Dataset::from_rows(&lcg_rows(20, 3, 42)).unwrap();
        let w = [0.5, 0.3, 0.2];
        let r = data.rank(&w).unwrap();
        let region = ranking_region_md(&data, &r).unwrap().unwrap();
        assert!(region.contains_with_tol(&w, 1e-12));
    }

    #[test]
    fn functions_in_region_generate_the_ranking() {
        let data = Dataset::from_rows(&lcg_rows(15, 3, 7)).unwrap();
        let w = [0.2, 0.5, 0.3];
        let r = data.rank(&w).unwrap();
        let region = ranking_region_md(&data, &r).unwrap().unwrap();
        let samples = orthant_samples(1, 2000, 3);
        let mut inside = 0;
        for s in samples.iter_rows() {
            if region.contains(s) {
                inside += 1;
                assert_eq!(
                    data.rank(s).unwrap(),
                    r,
                    "region member gave another ranking"
                );
            } else {
                assert_ne!(data.rank(s).unwrap(), r, "outsider gave the same ranking");
            }
        }
        assert!(
            inside > 0,
            "sampled no witnesses; region too thin for the test"
        );
    }

    #[test]
    fn md_stability_matches_exact_2d() {
        // On a 2-D dataset the Monte-Carlo estimate must agree with SV2D.
        let data = Dataset::figure1();
        let w = [1.0, 1.0];
        let r = data.rank(&w).unwrap();
        let exact = stability_verify_2d(&data, &r, AngleInterval::full())
            .unwrap()
            .unwrap()
            .stability;
        let samples = orthant_samples(2, 100_000, 2);
        let est = stability_verify_md(&data, &r, &samples)
            .unwrap()
            .unwrap()
            .stability;
        assert!((est - exact).abs() < 0.01, "MC {est} vs exact {exact}");
    }

    #[test]
    fn infeasible_rankings_detected() {
        let data = Dataset::from_rows(&[
            vec![0.9, 0.9, 0.9],
            vec![0.1, 0.1, 0.1],
            vec![0.5, 0.4, 0.6],
        ])
        .unwrap();
        let bad = Ranking::new(vec![1, 0, 2]).unwrap(); // dominated first
        let samples = orthant_samples(3, 100, 3);
        assert!(stability_verify_md(&data, &bad, &samples)
            .unwrap()
            .is_none());
    }

    #[test]
    fn identical_items_tie_break_in_md() {
        let data = Dataset::from_rows(&[vec![0.4, 0.4, 0.4], vec![0.4, 0.4, 0.4]]).unwrap();
        let canonical = Ranking::new(vec![0, 1]).unwrap();
        let flipped = Ranking::new(vec![1, 0]).unwrap();
        assert!(ranking_region_md(&data, &canonical).unwrap().is_some());
        assert!(ranking_region_md(&data, &flipped).unwrap().is_none());
    }

    #[test]
    fn dominance_pairs_add_no_constraints() {
        let data = Dataset::from_rows(&[
            vec![0.9, 0.9, 0.9],
            vec![0.5, 0.5, 0.5],
            vec![0.1, 0.1, 0.1],
        ])
        .unwrap();
        let r = Ranking::new(vec![0, 1, 2]).unwrap();
        let region = ranking_region_md(&data, &r).unwrap().unwrap();
        assert_eq!(region.len(), 0, "full dominance chain needs no half-spaces");
        let samples = orthant_samples(4, 1000, 3);
        let v = stability_verify_md(&data, &r, &samples).unwrap().unwrap();
        assert_eq!(v.stability, 1.0);
    }

    #[test]
    fn sample_dimension_checked() {
        let data = Dataset::figure1();
        let r = data.rank(&[1.0, 1.0]).unwrap();
        let samples = orthant_samples(5, 10, 3);
        assert!(matches!(
            stability_verify_md(&data, &r, &samples),
            Err(StableRankError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn exact_3d_stability_matches_monte_carlo() {
        // The strongest oracle calibration available: exact Girard areas
        // vs the sampling oracle, on real ranking regions.
        let data = Dataset::from_rows(&lcg_rows(12, 3, 77)).unwrap();
        let samples = orthant_samples(10, 200_000, 3);
        let mut checked = 0;
        for probe in [
            vec![0.5, 0.3, 0.2],
            vec![0.1, 0.6, 0.3],
            vec![0.33, 0.33, 0.34],
            vec![0.7, 0.2, 0.1],
        ] {
            let r = data.rank(&probe).unwrap();
            let exact = stability_verify_3d_exact(&data, &r)
                .unwrap()
                .unwrap()
                .stability;
            let mc = stability_verify_md(&data, &r, &samples)
                .unwrap()
                .unwrap()
                .stability;
            // 200k samples ⇒ σ ≈ √(p/200k) ≤ 0.0016 at p ≈ 0.5.
            assert!(
                (exact - mc).abs() < 0.005,
                "probe {probe:?}: exact {exact} vs MC {mc}"
            );
            checked += 1;
        }
        assert_eq!(checked, 4);
    }

    #[test]
    fn exact_3d_stabilities_partition_unity() {
        // Enumerate distinct rankings by probing, then check the exact
        // areas sum to 1 over all of them (discovered via fine sampling).
        let data = Dataset::from_rows(&lcg_rows(6, 3, 33)).unwrap();
        let samples = orthant_samples(11, 50_000, 3);
        let mut seen: Vec<Ranking> = Vec::new();
        for s in samples.iter_rows() {
            let r = data.rank(s).unwrap();
            if !seen.contains(&r) {
                seen.push(r);
            }
        }
        let total: f64 = seen
            .iter()
            .map(|r| {
                stability_verify_3d_exact(&data, r)
                    .unwrap()
                    .unwrap()
                    .stability
            })
            .sum();
        // 50k samples find every region of non-trivial mass; the missing
        // tail is below the sampling resolution.
        assert!(total > 0.999 && total <= 1.0 + 1e-9, "total = {total}");
    }

    #[test]
    fn exact_3d_requires_three_dimensions() {
        let data = Dataset::figure1();
        let r = data.rank(&[1.0, 1.0]).unwrap();
        assert!(stability_verify_3d_exact(&data, &r).is_err());
    }

    #[test]
    fn disjoint_rankings_partition_sampled_mass() {
        let data = Dataset::from_rows(&lcg_rows(8, 3, 99)).unwrap();
        let samples = orthant_samples(6, 20_000, 3);
        // Collect the distinct rankings the samples themselves induce.
        let mut seen: Vec<Ranking> = Vec::new();
        for s in samples.iter_rows() {
            let r = data.rank(s).unwrap();
            if !seen.contains(&r) {
                seen.push(r);
            }
        }
        let total: f64 = seen
            .iter()
            .map(|r| {
                stability_verify_md(&data, r, &samples)
                    .unwrap()
                    .unwrap()
                    .stability
            })
            .sum();
        // Every sample is counted by exactly one ranking region (boundary
        // hits are measure-zero), so the sum is 1 up to boundary ties.
        assert!((total - 1.0).abs() < 1e-3, "total = {total}");
    }
}
