//! The dataset model of §2.1.1: `n` items over `d` normalized scoring
//! attributes, with both a row-major and a columnar (struct-of-arrays)
//! view of the attribute matrix.
//!
//! ## The scoring kernel
//!
//! Every Monte-Carlo operator reduces to the same inner loop: score all
//! `n` items under a sampled weight vector, then order them. Two layouts
//! serve that loop:
//!
//! * **row-major** (`data[i·d + j]`) — one dot product per item; natural
//!   for single-item scoring ([`Dataset::score`]) and kept as the
//!   reference path ([`Dataset::scores_into_row_major`]);
//! * **columnar** (`cols[j·n + i]`) — [`Dataset::scores_into`] accumulates
//!   `w_j · col_j` one attribute at a time with 4-way unrolled loops the
//!   compiler can vectorize. Per-column accumulation wins once `n` is
//!   large enough for SIMD to matter (hundreds of items) because each
//!   pass is a pure stride-1 multiply-add with no horizontal reduction.
//!
//! Both paths add the `d` partial products in the same order, so their
//! results are **bit-identical** — tests cross-check them with exact
//! equality, and switching the default layout cannot perturb any seeded
//! expectation downstream.
//!
//! Ordering on top of the scores avoids `f64` comparisons in the common
//! case. Each item packs into one `u64` of `(inverted quantized score,
//! index)` — the quantization keeps the top 32 bits of the
//! order-preserving bit pattern of the score — and then:
//!
//! * [`Dataset::rank_into_keyed`] sorts the packed keys with a stable
//!   3-pass LSD radix (no comparisons at all), and
//! * [`Dataset::top_k_into_keyed`] selects/sorts them as machine words;
//!
//! both fall back to the exact `f64` comparator only where two quantized
//! halves collide, so their output is *exactly* the order of the kept
//! reference path ([`Dataset::rank_into`] / [`Dataset::top_k_into`]):
//! descending score, ties broken by ascending item index.

use crate::error::{Result, StableRankError};
use crate::ranking::Ranking;
use srank_geom::dominance::dominates;
use srank_geom::vector::dot;

/// A fixed database of items with scalar scoring attributes.
///
/// Attributes are assumed normalized per the paper: in `[0, 1]` with larger
/// values preferred (see `srank-data`'s `RawTable::normalized`). The type
/// does not *enforce* the unit interval — the techniques work for any
/// non-negative values — but negative attributes break the geometry of
/// first-orthant scoring and are rejected.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    n: usize,
    d: usize,
    /// Row-major attribute matrix, `data[i·d + j] = item i, attribute j`.
    data: Vec<f64>,
    /// Columnar mirror, `cols[j·n + i] = item i, attribute j` — the
    /// struct-of-arrays layout of the scoring kernel.
    cols: Vec<f64>,
}

/// Maps a finite score to a `u64` whose unsigned order equals the score's
/// numeric order (the standard sign-flip trick, covering the negative
/// scores an unclipped cone sample can produce).
#[inline]
fn orderable_bits(s: f64) -> u64 {
    let b = s.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1u64 << 63)
    }
}

/// Packs item `i` with its score into one sortable key: high 32 bits are
/// the *inverted* quantized score (so ascending key order is descending
/// score order), low 32 bits the item index.
#[inline]
fn packed_key(score: f64, i: u32) -> u64 {
    let q = (orderable_bits(score) >> 32) as u32;
    ((!q as u64) << 32) | i as u64
}

/// The exact comparator over packed keys: quantized halves first, the
/// full-precision score (descending) and item index (ascending) only on a
/// quantized collision. Total order identical to the reference
/// comparator of [`Dataset::rank_into`].
#[inline]
fn packed_cmp(scores: &[f64], a: u64, b: u64) -> std::cmp::Ordering {
    let (qa, qb) = (a >> 32, b >> 32);
    if qa != qb {
        return qa.cmp(&qb);
    }
    let (ia, ib) = (a as u32, b as u32);
    scores[ib as usize]
        .partial_cmp(&scores[ia as usize])
        .unwrap()
        .then(ia.cmp(&ib))
}

/// Sorts packed keys ascending by a 3-pass LSD radix over the 32
/// quantized-score bits (11 + 11 + 10), ping-ponging between `keys` and
/// `spare`. Stable, so equal quantized scores keep ascending-index order.
/// The sorted keys end up back in `keys`; `spare` is pure scratch.
/// Radix is immune to the score *distribution* (bits are bits), which a
/// value-bucketing sort is not.
fn radix_sort_keys(keys: &mut Vec<u64>, spare: &mut Vec<u64>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    spare.clear();
    spare.resize(n, 0);
    let (mut h0, mut h1, mut h2) = ([0u32; 2048], [0u32; 2048], [0u32; 1024]);
    // One histogram pass for all digits, plus the OR of bit differences —
    // a digit all keys agree on needs no scatter pass at all (typical for
    // the top bits: every score of one sample shares an exponent range).
    let first = keys[0] >> 32;
    let mut diff = 0u64;
    for &k in keys.iter() {
        let v = k >> 32;
        diff |= v ^ first;
        h0[(v & 0x7ff) as usize] += 1;
        h1[((v >> 11) & 0x7ff) as usize] += 1;
        h2[(v >> 22) as usize] += 1;
    }
    let prefix = |h: &mut [u32]| {
        let mut acc = 0u32;
        for c in h.iter_mut() {
            let next = acc + *c;
            *c = acc;
            acc = next;
        }
    };
    // Ping-pong between the two buffers, running only the passes whose
    // digit actually varies; stability of each pass preserves the
    // ascending-index build order within equal keys.
    let (mut src, mut dst) = (keys, spare);
    let mut passes = 0usize;
    if diff & 0x7ff != 0 {
        prefix(&mut h0);
        for &k in src.iter() {
            let d = ((k >> 32) & 0x7ff) as usize;
            dst[h0[d] as usize] = k;
            h0[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
        passes += 1;
    }
    if diff & (0x7ff << 11) != 0 {
        prefix(&mut h1);
        for &k in src.iter() {
            let d = ((k >> 43) & 0x7ff) as usize;
            dst[h1[d] as usize] = k;
            h1[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
        passes += 1;
    }
    if diff & (0x3ff << 22) != 0 {
        prefix(&mut h2);
        for &k in src.iter() {
            let d = (k >> 54) as usize;
            dst[h2[d] as usize] = k;
            h2[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
        passes += 1;
    }
    // An odd pass count leaves the sorted data in the caller's `spare`
    // (`src` points at it after the final swap); move it home to `keys`.
    if passes % 2 == 1 {
        std::mem::swap(src, dst);
    }
}

impl Dataset {
    /// Builds a dataset from item rows.
    ///
    /// # Errors
    /// Rejects empty input, ragged rows, non-finite or negative values.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StableRankError::EmptyDataset);
        }
        let d = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != d {
                return Err(StableRankError::DimensionMismatch {
                    expected: d,
                    got: r.len(),
                });
            }
            for &v in r {
                if !v.is_finite() || v < 0.0 {
                    return Err(StableRankError::InvalidWeights(format!(
                        "item {i} has non-finite or negative attribute {v}"
                    )));
                }
            }
            data.extend_from_slice(r);
        }
        let n = rows.len();
        let mut cols = vec![0.0; n * d];
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                cols[j * n + i] = v;
            }
        }
        Ok(Self { n, d, data, cols })
    }

    /// Number of items `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of scoring attributes `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Item `i`'s attribute vector.
    #[inline]
    pub fn item(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Attribute `j` across all items — the columnar view.
    #[inline]
    pub fn column(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }

    /// The linear score `f_w(t_i) = Σ_j w_j·t_i[j]`.
    #[inline]
    pub fn score(&self, i: usize, w: &[f64]) -> f64 {
        dot(self.item(i), w)
    }

    /// Whether item `i` dominates item `j` (§3).
    pub fn dominates(&self, i: usize, j: usize) -> bool {
        dominates(self.item(i), self.item(j))
    }

    /// Validates that `w` has the right arity for this dataset.
    pub fn check_weights(&self, w: &[f64]) -> Result<()> {
        if w.len() != self.d {
            return Err(StableRankError::DimensionMismatch {
                expected: self.d,
                got: w.len(),
            });
        }
        Ok(())
    }

    /// The ranking `∇f_w(D)`: items by descending score, ties broken by
    /// item index (the paper's "consistent tie-break by item identifier").
    pub fn rank(&self, w: &[f64]) -> Result<Ranking> {
        self.check_weights(w)?;
        let mut scores = Vec::new();
        let mut order = Vec::new();
        self.rank_into(w, &mut scores, &mut order);
        Ok(Ranking::from_order_unchecked(order))
    }

    /// Allocation-free ranking into caller-provided buffers: fills `order`
    /// with all item indices sorted by descending score, via a comparator
    /// sort — the reference path the radix fast path
    /// ([`rank_into_keyed`](Self::rank_into_keyed)) is cross-checked
    /// against.
    pub fn rank_into(&self, w: &[f64], scores: &mut Vec<f64>, order: &mut Vec<u32>) {
        self.scores_into(w, scores);
        order.clear();
        order.extend(0..self.n as u32);
        order.sort_unstable_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
    }

    /// The radix fast path of [`rank_into`](Self::rank_into): items become
    /// `(inverted quantized score, index)` machine words, a stable 3-pass
    /// LSD radix sorts them without a single `f64` comparison, and runs of
    /// equal quantized scores (rare: equal top-32 score bits) are re-sorted
    /// with the exact comparator. Output order is *identical* to
    /// `rank_into`; `keys`/`spare` are two more scratch buffers the caller
    /// keeps alive between samples, so steady state does zero heap
    /// allocations.
    pub fn rank_into_keyed(
        &self,
        w: &[f64],
        scores: &mut Vec<f64>,
        keys: &mut Vec<u64>,
        spare: &mut Vec<u64>,
        order: &mut Vec<u32>,
    ) {
        self.scores_into(w, scores);
        keys.clear();
        keys.extend(
            scores
                .iter()
                .enumerate()
                .map(|(i, &s)| packed_key(s, i as u32)),
        );
        radix_sort_keys(keys, spare);
        // Quantized collisions sorted by index instead of exact score:
        // re-sort those runs with the exact comparator so the final order
        // matches `rank_into` everywhere.
        let s = &scores[..];
        let n = keys.len();
        let mut i = 0;
        while i < n {
            let q = keys[i] >> 32;
            let mut j = i + 1;
            while j < n && keys[j] >> 32 == q {
                j += 1;
            }
            if j - i > 1 {
                keys[i..j].sort_unstable_by(|&a, &b| packed_cmp(s, a, b));
            }
            i = j;
        }
        order.clear();
        order.extend(keys.iter().map(|&k| k as u32));
    }

    /// The ranked top-k prefix of `∇f_w(D)` without sorting all of `D`:
    /// an O(n + k log k) selection, the workhorse of the top-k randomized
    /// operators on million-item datasets.
    pub fn top_k_into(
        &self,
        w: &[f64],
        k: usize,
        scores: &mut Vec<f64>,
        idx: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        let k = k.min(self.n);
        self.scores_into(w, scores);
        idx.clear();
        idx.extend(0..self.n as u32);
        let cmp = |a: &u32, b: &u32| {
            scores[*b as usize]
                .partial_cmp(&scores[*a as usize])
                .unwrap()
                .then(a.cmp(b))
        };
        if k > 0 && k < self.n {
            idx.select_nth_unstable_by(k - 1, cmp);
        }
        let top = &mut idx[..k];
        top.sort_unstable_by(cmp);
        out.clear();
        out.extend_from_slice(top);
    }

    /// The packed-key fast path of [`top_k_into`](Self::top_k_into):
    /// selection and prefix sort over `(quantized score, index)` machine
    /// words, identical output order.
    pub fn top_k_into_keyed(
        &self,
        w: &[f64],
        k: usize,
        scores: &mut Vec<f64>,
        keys: &mut Vec<u64>,
        out: &mut Vec<u32>,
    ) {
        let k = k.min(self.n);
        self.scores_into(w, scores);
        keys.clear();
        keys.extend(
            scores
                .iter()
                .enumerate()
                .map(|(i, &s)| packed_key(s, i as u32)),
        );
        let s = &scores[..];
        if k > 0 && k < self.n {
            keys.select_nth_unstable_by(k - 1, |&a, &b| packed_cmp(s, a, b));
        }
        let top = &mut keys[..k];
        top.sort_unstable_by(|&a, &b| packed_cmp(s, a, b));
        out.clear();
        out.extend(top.iter().map(|&key| key as u32));
    }

    /// Convenience wrapper allocating fresh buffers.
    pub fn top_k(&self, w: &[f64], k: usize) -> Result<Vec<u32>> {
        self.check_weights(w)?;
        let (mut scores, mut idx, mut out) = (Vec::new(), Vec::new(), Vec::new());
        self.top_k_into(w, k, &mut scores, &mut idx, &mut out);
        Ok(out)
    }

    /// The columnar scoring kernel: `scores[i] = Σ_j w_j · cols[j][i]`,
    /// accumulated one column at a time with 4-way unrolling. Adds the
    /// partial products in the same `j` order as the row-major path, so
    /// the two are bit-identical.
    pub fn scores_into(&self, w: &[f64], scores: &mut Vec<f64>) {
        debug_assert_eq!(w.len(), self.d);
        scores.clear();
        scores.resize(self.n, 0.0);
        let out = &mut scores[..];
        for (j, &wj) in w.iter().enumerate() {
            let col = &self.cols[j * self.n..(j + 1) * self.n];
            if j == 0 {
                let (o4, o_tail) = out.as_chunks_mut::<4>();
                let (c4, c_tail) = col.as_chunks::<4>();
                for (o, c) in o4.iter_mut().zip(c4) {
                    o[0] = wj * c[0];
                    o[1] = wj * c[1];
                    o[2] = wj * c[2];
                    o[3] = wj * c[3];
                }
                for (o, &c) in o_tail.iter_mut().zip(c_tail) {
                    *o = wj * c;
                }
            } else {
                let (o4, o_tail) = out.as_chunks_mut::<4>();
                let (c4, c_tail) = col.as_chunks::<4>();
                for (o, c) in o4.iter_mut().zip(c4) {
                    o[0] += wj * c[0];
                    o[1] += wj * c[1];
                    o[2] += wj * c[2];
                    o[3] += wj * c[3];
                }
                for (o, &c) in o_tail.iter_mut().zip(c_tail) {
                    *o += wj * c;
                }
            }
        }
    }

    /// The row-major reference path: one dot product per item (with the
    /// historical small-`d` specializations). Kept for cross-checking the
    /// columnar kernel and for callers that score a handful of items.
    pub fn scores_into_row_major(&self, w: &[f64], scores: &mut Vec<f64>) {
        debug_assert_eq!(w.len(), self.d);
        scores.clear();
        scores.reserve(self.n);
        match self.d {
            2 => scores.extend(self.data.chunks_exact(2).map(|t| t[0] * w[0] + t[1] * w[1])),
            3 => scores.extend(
                self.data
                    .chunks_exact(3)
                    .map(|t| t[0] * w[0] + t[1] * w[1] + t[2] * w[2]),
            ),
            _ => scores.extend(self.data.chunks_exact(self.d).map(|t| dot(t, w))),
        }
    }

    /// Appends a derived scoring attribute computed from each item's
    /// existing attributes — the §2.1.1 device for non-linear scoring:
    /// "consider f(t) = x1 + x2 + 0.5·x1²; the quadratic term can be added
    /// as x3 = x1²". The derived values must be finite and non-negative.
    ///
    /// ```
    /// # use srank_core::dataset::Dataset;
    /// let d = Dataset::figure1();
    /// // Score f = x1 + x2 + 0.5·x1² becomes linear weights (1, 1, 0.5).
    /// let augmented = d.with_derived_attribute(|t| t[0] * t[0]).unwrap();
    /// let quadratic = augmented.rank(&[1.0, 1.0, 0.5]).unwrap();
    /// assert_eq!(quadratic.len(), 5);
    /// ```
    pub fn with_derived_attribute(&self, derive: impl Fn(&[f64]) -> f64) -> Result<Dataset> {
        let rows: Vec<Vec<f64>> = (0..self.n)
            .map(|i| {
                let item = self.item(i);
                let mut row = item.to_vec();
                row.push(derive(item));
                row
            })
            .collect();
        Dataset::from_rows(&rows)
    }

    /// The Figure 1a example database — used pervasively in tests and docs.
    ///
    /// ```
    /// # use srank_core::dataset::Dataset;
    /// let d = Dataset::figure1();
    /// let r = d.rank(&[1.0, 1.0]).unwrap();
    /// // §2.1.2: f = x1 + x2 ranks ⟨t2, t4, t3, t5, t1⟩.
    /// assert_eq!(r.order(), &[1, 3, 2, 4, 0]);
    /// ```
    pub fn figure1() -> Self {
        Dataset::from_rows(&[
            vec![0.63, 0.71],
            vec![0.83, 0.65],
            vec![0.58, 0.78],
            vec![0.70, 0.68],
            vec![0.53, 0.82],
        ])
        .expect("static example data is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validation() {
        assert_eq!(Dataset::from_rows(&[]), Err(StableRankError::EmptyDataset));
        assert!(matches!(
            Dataset::from_rows(&[vec![0.1, 0.2], vec![0.1]]),
            Err(StableRankError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(Dataset::from_rows(&[vec![0.1, -0.2]]).is_err());
        assert!(Dataset::from_rows(&[vec![0.1, f64::NAN]]).is_err());
    }

    #[test]
    fn scores_match_figure1() {
        let d = Dataset::figure1();
        // Figure 1a: f = x1 + x2 scores.
        let expect = [1.34, 1.48, 1.36, 1.38, 1.35];
        for (i, &s) in expect.iter().enumerate() {
            assert!((d.score(i, &[1.0, 1.0]) - s).abs() < 1e-12);
        }
    }

    #[test]
    fn ranking_matches_paper() {
        let d = Dataset::figure1();
        assert_eq!(d.rank(&[1.0, 1.0]).unwrap().order(), &[1, 3, 2, 4, 0]);
        // f = x1 alone: order by first attribute.
        assert_eq!(d.rank(&[1.0, 0.0]).unwrap().order(), &[1, 3, 0, 2, 4]);
        // f = x2 alone.
        assert_eq!(d.rank(&[0.0, 1.0]).unwrap().order(), &[4, 2, 0, 3, 1]);
    }

    #[test]
    fn ties_break_by_item_index() {
        let d = Dataset::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5], vec![0.9, 0.9]]).unwrap();
        assert_eq!(d.rank(&[1.0, 1.0]).unwrap().order(), &[2, 0, 1]);
    }

    #[test]
    fn top_k_is_ranking_prefix() {
        let d = Dataset::figure1();
        for k in 0..=5 {
            let top = d.top_k(&[1.0, 1.0], k).unwrap();
            let full = d.rank(&[1.0, 1.0]).unwrap();
            assert_eq!(top.as_slice(), &full.order()[..k]);
        }
    }

    #[test]
    fn top_k_clamps_to_n() {
        let d = Dataset::figure1();
        assert_eq!(d.top_k(&[1.0, 1.0], 99).unwrap().len(), 5);
    }

    #[test]
    fn top_k_prefix_consistent_on_larger_data() {
        // Pseudo-random 3-attribute data; top-k must equal the full
        // ranking's prefix for every k tested.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let rows: Vec<Vec<f64>> = (0..500).map(|_| (0..3).map(|_| next()).collect()).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let w = [0.5, 0.3, 0.2];
        let full = d.rank(&w).unwrap();
        for k in [1usize, 7, 100, 499] {
            assert_eq!(d.top_k(&w, k).unwrap().as_slice(), &full.order()[..k]);
        }
    }

    #[test]
    fn columnar_and_row_major_scores_are_bit_identical() {
        let mut state = 0xfeed_beefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for (n, d) in [
            (1usize, 2usize),
            (5, 2),
            (7, 3),
            (37, 4),
            (203, 5),
            (500, 7),
        ] {
            let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
            let data = Dataset::from_rows(&rows).unwrap();
            let w: Vec<f64> = (0..d).map(|_| next()).collect();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            data.scores_into(&w, &mut a);
            data.scores_into_row_major(&w, &mut b);
            assert_eq!(a.len(), n);
            // Same f64 association order ⇒ exact equality, not tolerance.
            assert_eq!(a, b, "n={n} d={d}");
        }
    }

    #[test]
    fn fast_ranking_matches_reference_comparator() {
        let mut state = 0xabcdu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for n in [1usize, 2, 17, 100, 501] {
            let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..3).map(|_| next()).collect()).collect();
            let data = Dataset::from_rows(&rows).unwrap();
            let w = [next(), next(), next()];
            let (mut s1, mut s2, mut keys, mut spare) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            let (mut ref_order, mut fast_order) = (Vec::new(), Vec::new());
            data.rank_into(&w, &mut s1, &mut ref_order);
            data.rank_into_keyed(&w, &mut s2, &mut keys, &mut spare, &mut fast_order);
            assert_eq!(ref_order, fast_order, "n={n}");
            for k in [0usize, 1, n / 2, n] {
                let (mut idx, mut out_ref, mut out_fast) = (Vec::new(), Vec::new(), Vec::new());
                data.top_k_into(&w, k, &mut s1, &mut idx, &mut out_ref);
                data.top_k_into_keyed(&w, k, &mut s2, &mut keys, &mut out_fast);
                assert_eq!(out_ref, out_fast, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn fast_ranking_resolves_exact_ties_by_index() {
        // Duplicate rows land in one bucket *and* compare exactly equal:
        // the fixup comparator must break ties by ascending index.
        let d = Dataset::from_rows(&[
            vec![0.5, 0.5],
            vec![0.9, 0.3],
            vec![0.5, 0.5],
            vec![0.5, 0.5],
        ])
        .unwrap();
        let (mut s, mut keys, mut spare, mut order) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        d.rank_into_keyed(&[1.0, 1.0], &mut s, &mut keys, &mut spare, &mut order);
        assert_eq!(order, vec![1, 0, 2, 3]);
        let mut out = Vec::new();
        d.top_k_into_keyed(&[1.0, 1.0], 2, &mut s, &mut keys, &mut out);
        assert_eq!(out, vec![1, 0]);
        // All-equal scores: one quantized run, full comparator fallback.
        let tied = Dataset::from_rows(&vec![vec![0.5, 0.5]; 6]).unwrap();
        tied.rank_into_keyed(&[1.0, 1.0], &mut s, &mut keys, &mut spare, &mut order);
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn column_view_mirrors_rows() {
        let d = Dataset::figure1();
        for j in 0..d.dim() {
            for i in 0..d.len() {
                assert_eq!(d.column(j)[i], d.item(i)[j]);
            }
        }
    }

    #[test]
    fn dominates_wraps_geometry() {
        let d = Dataset::from_rows(&[vec![0.9, 0.9], vec![0.1, 0.1]]).unwrap();
        assert!(d.dominates(0, 1));
        assert!(!d.dominates(1, 0));
    }

    #[test]
    fn weight_arity_checked() {
        let d = Dataset::figure1();
        assert!(d.rank(&[1.0, 1.0, 1.0]).is_err());
        assert!(d.top_k(&[1.0], 3).is_err());
    }

    #[test]
    fn derived_attribute_linearizes_quadratic_scoring() {
        // §2.1.1's example: f = x1 + x2 + 0.5·x1² via x3 = x1².
        let d = Dataset::figure1();
        let aug = d.with_derived_attribute(|t| t[0] * t[0]).unwrap();
        assert_eq!(aug.dim(), 3);
        // Scores under (1, 1, 0.5) must equal the non-linear formula.
        for i in 0..d.len() {
            let t = d.item(i);
            let nonlinear = t[0] + t[1] + 0.5 * t[0] * t[0];
            assert!((aug.score(i, &[1.0, 1.0, 0.5]) - nonlinear).abs() < 1e-12);
        }
        // And the induced ranking is the non-linear ranking.
        let mut by_nonlinear: Vec<usize> = (0..d.len()).collect();
        by_nonlinear.sort_by(|&a, &b| {
            let s = |i: usize| {
                let t = d.item(i);
                t[0] + t[1] + 0.5 * t[0] * t[0]
            };
            s(b).partial_cmp(&s(a)).unwrap().then(a.cmp(&b))
        });
        let ranked = aug.rank(&[1.0, 1.0, 0.5]).unwrap();
        let got: Vec<usize> = ranked.order().iter().map(|&i| i as usize).collect();
        assert_eq!(got, by_nonlinear);
    }

    #[test]
    fn derived_attribute_rejects_invalid_values() {
        let d = Dataset::figure1();
        assert!(d.with_derived_attribute(|_| -1.0).is_err());
        assert!(d.with_derived_attribute(|_| f64::NAN).is_err());
    }
}
