//! The dataset model of §2.1.1: `n` items over `d` normalized scoring
//! attributes, stored row-major for cache-friendly scoring sweeps.

use crate::error::{Result, StableRankError};
use crate::ranking::Ranking;
use srank_geom::dominance::dominates;
use srank_geom::vector::dot;

/// A fixed database of items with scalar scoring attributes.
///
/// Attributes are assumed normalized per the paper: in `[0, 1]` with larger
/// values preferred (see `srank-data`'s `RawTable::normalized`). The type
/// does not *enforce* the unit interval — the techniques work for any
/// non-negative values — but negative attributes break the geometry of
/// first-orthant scoring and are rejected.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    n: usize,
    d: usize,
    /// Row-major attribute matrix, `data[i·d + j] = item i, attribute j`.
    data: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from item rows.
    ///
    /// # Errors
    /// Rejects empty input, ragged rows, non-finite or negative values.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StableRankError::EmptyDataset);
        }
        let d = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != d {
                return Err(StableRankError::DimensionMismatch {
                    expected: d,
                    got: r.len(),
                });
            }
            for &v in r {
                if !v.is_finite() || v < 0.0 {
                    return Err(StableRankError::InvalidWeights(format!(
                        "item {i} has non-finite or negative attribute {v}"
                    )));
                }
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            n: rows.len(),
            d,
            data,
        })
    }

    /// Number of items `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of scoring attributes `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Item `i`'s attribute vector.
    #[inline]
    pub fn item(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// The linear score `f_w(t_i) = Σ_j w_j·t_i[j]`.
    #[inline]
    pub fn score(&self, i: usize, w: &[f64]) -> f64 {
        dot(self.item(i), w)
    }

    /// Whether item `i` dominates item `j` (§3).
    pub fn dominates(&self, i: usize, j: usize) -> bool {
        dominates(self.item(i), self.item(j))
    }

    /// Validates that `w` has the right arity for this dataset.
    pub fn check_weights(&self, w: &[f64]) -> Result<()> {
        if w.len() != self.d {
            return Err(StableRankError::DimensionMismatch {
                expected: self.d,
                got: w.len(),
            });
        }
        Ok(())
    }

    /// The ranking `∇f_w(D)`: items by descending score, ties broken by
    /// item index (the paper's "consistent tie-break by item identifier").
    pub fn rank(&self, w: &[f64]) -> Result<Ranking> {
        self.check_weights(w)?;
        let mut scores = Vec::new();
        let mut order = Vec::new();
        self.rank_into(w, &mut scores, &mut order);
        Ok(Ranking::from_order_unchecked(order))
    }

    /// Allocation-free ranking into caller-provided buffers: fills `order`
    /// with all item indices sorted by descending score. Hot path of the
    /// randomized operators.
    pub fn rank_into(&self, w: &[f64], scores: &mut Vec<f64>, order: &mut Vec<u32>) {
        self.fill_scores(w, scores);
        order.clear();
        order.extend(0..self.n as u32);
        order.sort_unstable_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
    }

    /// The ranked top-k prefix of `∇f_w(D)` without sorting all of `D`:
    /// an O(n + k log k) selection, the workhorse of the top-k randomized
    /// operators on million-item datasets.
    pub fn top_k_into(
        &self,
        w: &[f64],
        k: usize,
        scores: &mut Vec<f64>,
        idx: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        let k = k.min(self.n);
        self.fill_scores(w, scores);
        idx.clear();
        idx.extend(0..self.n as u32);
        let cmp = |a: &u32, b: &u32| {
            scores[*b as usize]
                .partial_cmp(&scores[*a as usize])
                .unwrap()
                .then(a.cmp(b))
        };
        if k > 0 && k < self.n {
            idx.select_nth_unstable_by(k - 1, cmp);
        }
        let top = &mut idx[..k];
        top.sort_unstable_by(cmp);
        out.clear();
        out.extend_from_slice(top);
    }

    /// Convenience wrapper allocating fresh buffers.
    pub fn top_k(&self, w: &[f64], k: usize) -> Result<Vec<u32>> {
        self.check_weights(w)?;
        let (mut scores, mut idx, mut out) = (Vec::new(), Vec::new(), Vec::new());
        self.top_k_into(w, k, &mut scores, &mut idx, &mut out);
        Ok(out)
    }

    fn fill_scores(&self, w: &[f64], scores: &mut Vec<f64>) {
        debug_assert_eq!(w.len(), self.d);
        scores.clear();
        scores.reserve(self.n);
        // Specialized small-d loops keep the inner product branch-free.
        match self.d {
            2 => scores.extend(self.data.chunks_exact(2).map(|t| t[0] * w[0] + t[1] * w[1])),
            3 => scores.extend(
                self.data
                    .chunks_exact(3)
                    .map(|t| t[0] * w[0] + t[1] * w[1] + t[2] * w[2]),
            ),
            _ => scores.extend(self.data.chunks_exact(self.d).map(|t| dot(t, w))),
        }
    }

    /// Appends a derived scoring attribute computed from each item's
    /// existing attributes — the §2.1.1 device for non-linear scoring:
    /// "consider f(t) = x1 + x2 + 0.5·x1²; the quadratic term can be added
    /// as x3 = x1²". The derived values must be finite and non-negative.
    ///
    /// ```
    /// # use srank_core::dataset::Dataset;
    /// let d = Dataset::figure1();
    /// // Score f = x1 + x2 + 0.5·x1² becomes linear weights (1, 1, 0.5).
    /// let augmented = d.with_derived_attribute(|t| t[0] * t[0]).unwrap();
    /// let quadratic = augmented.rank(&[1.0, 1.0, 0.5]).unwrap();
    /// assert_eq!(quadratic.len(), 5);
    /// ```
    pub fn with_derived_attribute(&self, derive: impl Fn(&[f64]) -> f64) -> Result<Dataset> {
        let rows: Vec<Vec<f64>> = (0..self.n)
            .map(|i| {
                let item = self.item(i);
                let mut row = item.to_vec();
                row.push(derive(item));
                row
            })
            .collect();
        Dataset::from_rows(&rows)
    }

    /// The Figure 1a example database — used pervasively in tests and docs.
    ///
    /// ```
    /// # use srank_core::dataset::Dataset;
    /// let d = Dataset::figure1();
    /// let r = d.rank(&[1.0, 1.0]).unwrap();
    /// // §2.1.2: f = x1 + x2 ranks ⟨t2, t4, t3, t5, t1⟩.
    /// assert_eq!(r.order(), &[1, 3, 2, 4, 0]);
    /// ```
    pub fn figure1() -> Self {
        Dataset::from_rows(&[
            vec![0.63, 0.71],
            vec![0.83, 0.65],
            vec![0.58, 0.78],
            vec![0.70, 0.68],
            vec![0.53, 0.82],
        ])
        .expect("static example data is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validation() {
        assert_eq!(Dataset::from_rows(&[]), Err(StableRankError::EmptyDataset));
        assert!(matches!(
            Dataset::from_rows(&[vec![0.1, 0.2], vec![0.1]]),
            Err(StableRankError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(Dataset::from_rows(&[vec![0.1, -0.2]]).is_err());
        assert!(Dataset::from_rows(&[vec![0.1, f64::NAN]]).is_err());
    }

    #[test]
    fn scores_match_figure1() {
        let d = Dataset::figure1();
        // Figure 1a: f = x1 + x2 scores.
        let expect = [1.34, 1.48, 1.36, 1.38, 1.35];
        for (i, &s) in expect.iter().enumerate() {
            assert!((d.score(i, &[1.0, 1.0]) - s).abs() < 1e-12);
        }
    }

    #[test]
    fn ranking_matches_paper() {
        let d = Dataset::figure1();
        assert_eq!(d.rank(&[1.0, 1.0]).unwrap().order(), &[1, 3, 2, 4, 0]);
        // f = x1 alone: order by first attribute.
        assert_eq!(d.rank(&[1.0, 0.0]).unwrap().order(), &[1, 3, 0, 2, 4]);
        // f = x2 alone.
        assert_eq!(d.rank(&[0.0, 1.0]).unwrap().order(), &[4, 2, 0, 3, 1]);
    }

    #[test]
    fn ties_break_by_item_index() {
        let d = Dataset::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5], vec![0.9, 0.9]]).unwrap();
        assert_eq!(d.rank(&[1.0, 1.0]).unwrap().order(), &[2, 0, 1]);
    }

    #[test]
    fn top_k_is_ranking_prefix() {
        let d = Dataset::figure1();
        for k in 0..=5 {
            let top = d.top_k(&[1.0, 1.0], k).unwrap();
            let full = d.rank(&[1.0, 1.0]).unwrap();
            assert_eq!(top.as_slice(), &full.order()[..k]);
        }
    }

    #[test]
    fn top_k_clamps_to_n() {
        let d = Dataset::figure1();
        assert_eq!(d.top_k(&[1.0, 1.0], 99).unwrap().len(), 5);
    }

    #[test]
    fn top_k_prefix_consistent_on_larger_data() {
        // Pseudo-random 3-attribute data; top-k must equal the full
        // ranking's prefix for every k tested.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let rows: Vec<Vec<f64>> = (0..500).map(|_| (0..3).map(|_| next()).collect()).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let w = [0.5, 0.3, 0.2];
        let full = d.rank(&w).unwrap();
        for k in [1usize, 7, 100, 499] {
            assert_eq!(d.top_k(&w, k).unwrap().as_slice(), &full.order()[..k]);
        }
    }

    #[test]
    fn dominates_wraps_geometry() {
        let d = Dataset::from_rows(&[vec![0.9, 0.9], vec![0.1, 0.1]]).unwrap();
        assert!(d.dominates(0, 1));
        assert!(!d.dominates(1, 0));
    }

    #[test]
    fn weight_arity_checked() {
        let d = Dataset::figure1();
        assert!(d.rank(&[1.0, 1.0, 1.0]).is_err());
        assert!(d.top_k(&[1.0], 3).is_err());
    }

    #[test]
    fn derived_attribute_linearizes_quadratic_scoring() {
        // §2.1.1's example: f = x1 + x2 + 0.5·x1² via x3 = x1².
        let d = Dataset::figure1();
        let aug = d.with_derived_attribute(|t| t[0] * t[0]).unwrap();
        assert_eq!(aug.dim(), 3);
        // Scores under (1, 1, 0.5) must equal the non-linear formula.
        for i in 0..d.len() {
            let t = d.item(i);
            let nonlinear = t[0] + t[1] + 0.5 * t[0] * t[0];
            assert!((aug.score(i, &[1.0, 1.0, 0.5]) - nonlinear).abs() < 1e-12);
        }
        // And the induced ranking is the non-linear ranking.
        let mut by_nonlinear: Vec<usize> = (0..d.len()).collect();
        by_nonlinear.sort_by(|&a, &b| {
            let s = |i: usize| {
                let t = d.item(i);
                t[0] + t[1] + 0.5 * t[0] * t[0]
            };
            s(b).partial_cmp(&s(a)).unwrap().then(a.cmp(&b))
        });
        let ranked = aug.rank(&[1.0, 1.0, 0.5]).unwrap();
        let got: Vec<usize> = ranked.order().iter().map(|&i| i as usize).collect();
        assert_eq!(got, by_nonlinear);
    }

    #[test]
    fn derived_attribute_rejects_invalid_values() {
        let d = Dataset::figure1();
        assert!(d.with_derived_attribute(|_| -1.0).is_err());
        assert!(d.with_derived_attribute(|_| f64::NAN).is_err());
    }
}
