//! Two-dimensional stable-region enumeration — `RAYSWEEPING` and
//! `GET-NEXT2D`, Algorithms 2 and 3 (§3.2).
//!
//! The sweep maintains the ranked list while a ray rotates from `U*`'s
//! lower to its upper angle. Only adjacent items can exchange, so a
//! min-heap of upcoming adjacent-pair exchange angles drives the sweep
//! (a kinetic sorted list). Every performed exchange closes one ranking
//! region; the regions then feed a max-heap by stability from which
//! `get_next` pops the next most stable ranking (Algorithm 3).
//!
//! Event validity is checked lazily at pop time: an event `(θ*, a, b)` is
//! acted on only if `a` is still ranked directly above `b` *and* the pair
//! is still in its pre-exchange orientation (`a` has the larger first
//! attribute). Stale duplicates fail the check and are discarded; adjacency
//! that re-forms later re-pushes the pair. This also handles exact ties
//! (several exchanges at one angle) without a special batch phase.

use crate::dataset::Dataset;
use crate::error::{Result, StableRankError};
use crate::ranking::Ranking;
use crate::sv2d::AngleInterval;
use srank_geom::angle2d::{exchange_angle_2d, weight_from_angle_2d};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A ranking region discovered by the sweep: an angle interval and its
/// stability within the swept region of interest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Region2DInfo {
    pub lo: f64,
    pub hi: f64,
    pub stability: f64,
}

impl Region2DInfo {
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A ranking returned by `get_next`: the ranking, its stability, and its
/// region.
#[derive(Clone, Debug, PartialEq)]
pub struct StableRanking2D {
    pub ranking: Ranking,
    pub stability: f64,
    pub region: Region2DInfo,
}

/// Totally-ordered f64 key for the event/stability heaps (all keys are
/// finite by construction).
#[derive(Clone, Copy, Debug, PartialEq)]
struct F64Key(f64);

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("heap keys are finite")
    }
}

/// The 2-D stable-region enumerator: Algorithm 2 at construction,
/// Algorithm 3 per [`get_next`](Enumerator2D::get_next) call.
#[derive(Debug)]
pub struct Enumerator2D<'a> {
    data: &'a Dataset,
    regions: Vec<Region2DInfo>,
    /// Per-region ranking snapshots when constructed via
    /// [`new_storing_rankings`](Self::new_storing_rankings) — the paper's
    /// O(log n)-per-call, O(n·|R|)-memory variant.
    stored: Option<Vec<Ranking>>,
    /// Max-heap of `(stability, region index)`.
    heap: BinaryHeap<(F64Key, usize)>,
}

impl<'a> Enumerator2D<'a> {
    /// Runs the ray sweep over `interval` and prepares the stability heap.
    ///
    /// O(n² log n) worst case; the number of regions found is `|R*|`.
    pub fn new(data: &'a Dataset, interval: AngleInterval) -> Result<Self> {
        Self::build(data, interval, false)
    }

    /// Like [`new`](Self::new), but snapshots each region's ranking during
    /// the sweep, making every `get_next` call O(log n) at O(n·|R|) memory
    /// — the trade-off §3.2 describes ("subsequent GET-NEXT2D calls can be
    /// done in O(log n), with memory cost O(n³)").
    pub fn new_storing_rankings(data: &'a Dataset, interval: AngleInterval) -> Result<Self> {
        Self::build(data, interval, true)
    }

    fn build(data: &'a Dataset, interval: AngleInterval, store: bool) -> Result<Self> {
        if data.dim() != 2 {
            return Err(StableRankError::NeedTwoDimensions { got: data.dim() });
        }
        if data.is_empty() {
            return Err(StableRankError::EmptyDataset);
        }
        let (regions, stored) = ray_sweep(data, interval, store);
        let heap = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (F64Key(r.stability), i))
            .collect();
        Ok(Self {
            data,
            regions,
            stored,
            heap,
        })
    }

    /// All discovered regions in sweep (angle) order.
    pub fn regions(&self) -> &[Region2DInfo] {
        &self.regions
    }

    /// Number of feasible rankings in the region of interest.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Algorithm 3: the next most stable ranking, or `None` when all
    /// regions have been returned. With the default constructor the
    /// ranking is recomputed at the region's midpoint (O(n log n) per
    /// call, as in the paper); with stored rankings it is a clone.
    pub fn get_next(&mut self) -> Option<StableRanking2D> {
        let (_, idx) = self.heap.pop()?;
        let region = self.regions[idx];
        let ranking = match &self.stored {
            Some(snapshots) => snapshots[idx].clone(),
            None => {
                let w = weight_from_angle_2d(region.midpoint());
                self.data
                    .rank(&w)
                    .expect("dimension verified at construction")
            }
        };
        Some(StableRanking2D {
            ranking,
            stability: region.stability,
            region,
        })
    }

    /// Batch form of Problem 2: the top-`h` most stable rankings.
    pub fn top_h(&mut self, h: usize) -> Vec<StableRanking2D> {
        (0..h).map_while(|_| self.get_next()).collect()
    }

    /// Batch form of Problem 2: all rankings with stability at least `s`.
    pub fn with_stability_at_least(&mut self, s: f64) -> Vec<StableRanking2D> {
        let mut out = Vec::new();
        while let Some(top) = self.get_next() {
            if top.stability < s {
                break;
            }
            out.push(top);
        }
        out
    }
}

/// An owned, `Send + 'static` snapshot of an [`Enumerator2D`]'s progress,
/// detached from the dataset borrow.
///
/// Long-lived holders (e.g. `srank-service` sessions) keep the dataset in
/// an `Arc` and the enumerator as a `Sweep2DState`; each `get_next` call
/// reattaches with [`Enumerator2D::from_state`], pops, and detaches again
/// with [`Enumerator2D::into_state`]. Both conversions are O(1) moves.
#[derive(Clone, Debug)]
pub struct Sweep2DState {
    n_items: usize,
    regions: Vec<Region2DInfo>,
    stored: Option<Vec<Ranking>>,
    heap: Vec<(f64, usize)>,
}

impl Sweep2DState {
    /// Number of regions not yet returned by `get_next`.
    pub fn remaining(&self) -> usize {
        self.heap.len()
    }

    /// Total number of regions discovered by the sweep.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Serializes the state for durable storage. The heap rides in its
    /// internal array order: that array is a valid binary heap, and
    /// rebuilding a heap from an already-heapified array moves nothing —
    /// so a restored session pops regions in the identical order.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        use srank_sample::persist::{obj, u32_slice_value};
        let regions: Vec<Value> = self
            .regions
            .iter()
            .map(|r| {
                Value::Array(vec![
                    Value::Number(r.lo),
                    Value::Number(r.hi),
                    Value::Number(r.stability),
                ])
            })
            .collect();
        let heap: Vec<Value> = self
            .heap
            .iter()
            .map(|&(s, i)| Value::Array(vec![Value::Number(s), Value::Number(i as f64)]))
            .collect();
        let stored = match &self.stored {
            None => Value::Null,
            Some(snapshots) => Value::Array(
                snapshots
                    .iter()
                    .map(|r| u32_slice_value(r.order()))
                    .collect(),
            ),
        };
        obj([
            ("n_items", Value::Number(self.n_items as f64)),
            ("regions", Value::Array(regions)),
            ("stored", stored),
            ("heap", Value::Array(heap)),
        ])
    }

    /// Rebuilds a state serialized by [`to_value`](Self::to_value),
    /// re-validating every invariant a corrupted file could break.
    pub fn from_value(v: &serde_json::Value) -> srank_sample::persist::PersistResult<Self> {
        use srank_sample::persist::{array_field, field, usize_field, PersistError};
        let n_items = usize_field(v, "n_items")?;
        let triple = |x: &serde_json::Value, want: usize, what: &str| {
            let items = x
                .as_array()
                .filter(|a| a.len() == want)
                .ok_or_else(|| PersistError::new(format!("{what} must be a {want}-array")))?;
            items
                .iter()
                .map(|n| {
                    n.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| PersistError::new(format!("{what} must hold numbers")))
                })
                .collect::<srank_sample::persist::PersistResult<Vec<f64>>>()
        };
        let regions: Vec<Region2DInfo> = array_field(v, "regions")?
            .iter()
            .map(|r| {
                let t = triple(r, 3, "region")?;
                Ok(Region2DInfo {
                    lo: t[0],
                    hi: t[1],
                    stability: t[2],
                })
            })
            .collect::<srank_sample::persist::PersistResult<_>>()?;
        let heap: Vec<(f64, usize)> = array_field(v, "heap")?
            .iter()
            .map(|e| {
                let t = triple(e, 2, "heap entry")?;
                let idx = t[1] as usize;
                if idx >= regions.len() {
                    return Err(PersistError::new(format!(
                        "heap references region {idx} of {}",
                        regions.len()
                    )));
                }
                Ok((t[0], idx))
            })
            .collect::<srank_sample::persist::PersistResult<_>>()?;
        let stored = match field(v, "stored")? {
            serde_json::Value::Null => None,
            stored => {
                let snapshots = stored
                    .as_array()
                    .ok_or_else(|| PersistError::new("'stored' must be null or an array"))?
                    .iter()
                    .map(|r| {
                        let order = srank_sample::persist::u32_vec_value(r, "stored ranking")?;
                        Ranking::new(order)
                            .map_err(|e| PersistError::new(format!("stored ranking: {e}")))
                    })
                    .collect::<srank_sample::persist::PersistResult<Vec<Ranking>>>()?;
                if snapshots.len() != regions.len() {
                    return Err(PersistError::new(format!(
                        "{} stored rankings for {} regions",
                        snapshots.len(),
                        regions.len()
                    )));
                }
                Some(snapshots)
            }
        };
        Ok(Self {
            n_items,
            regions,
            stored,
            heap,
        })
    }
}

impl<'a> Enumerator2D<'a> {
    /// Detaches the enumeration state from the dataset borrow.
    pub fn into_state(self) -> Sweep2DState {
        Sweep2DState {
            n_items: self.data.len(),
            regions: self.regions,
            stored: self.stored,
            heap: self.heap.into_iter().map(|(F64Key(s), i)| (s, i)).collect(),
        }
    }

    /// Reattaches a detached state to its dataset.
    ///
    /// # Errors
    /// Fails when `data` is not the dataset the state was built over (only
    /// the cheap shape checks are possible: dimension and item count).
    pub fn from_state(data: &'a Dataset, state: Sweep2DState) -> Result<Self> {
        if data.dim() != 2 {
            return Err(StableRankError::NeedTwoDimensions { got: data.dim() });
        }
        if data.len() != state.n_items {
            return Err(StableRankError::DimensionMismatch {
                expected: state.n_items,
                got: data.len(),
            });
        }
        Ok(Self {
            data,
            regions: state.regions,
            stored: state.stored,
            heap: state
                .heap
                .into_iter()
                .map(|(s, i)| (F64Key(s), i))
                .collect(),
        })
    }
}

/// Algorithm 2: sweeps `interval` and returns the ranking regions in angle
/// order, optionally snapshotting each region's ranking.
fn ray_sweep(
    data: &Dataset,
    interval: AngleInterval,
    store: bool,
) -> (Vec<Region2DInfo>, Option<Vec<Ranking>>) {
    let n = data.len();
    let span = interval.span();
    let mut snapshots: Option<Vec<Ranking>> = store.then(Vec::new);
    if n == 1 {
        let only = Region2DInfo {
            lo: interval.lo(),
            hi: interval.hi(),
            stability: 1.0,
        };
        if let Some(s) = &mut snapshots {
            s.push(Ranking::from_order_unchecked(vec![0]));
        }
        return (vec![only], snapshots);
    }

    // Ranked list at the sweep start.
    let start = data
        .rank(&weight_from_angle_2d(interval.lo()))
        .expect("dimension checked by caller");
    let mut order: Vec<u32> = start.order().to_vec();
    let mut pos: Vec<u32> = vec![0; n];
    for (p, &item) in order.iter().enumerate() {
        pos[item as usize] = p as u32;
    }

    // Event min-heap of upcoming exchanges (θ*, above, below).
    let mut events: BinaryHeap<Reverse<(F64Key, u32, u32)>> = BinaryHeap::new();
    let push_if_upcoming =
        |events: &mut BinaryHeap<Reverse<(F64Key, u32, u32)>>, a: u32, b: u32| {
            let (ta, tb) = (data.item(a as usize), data.item(b as usize));
            if ta[0] <= tb[0] {
                return; // post-exchange orientation (or tied): nothing upcoming
            }
            if let Some(theta) = exchange_angle_2d(ta, tb) {
                if theta >= interval.lo() && theta < interval.hi() {
                    events.push(Reverse((F64Key(theta), a, b)));
                }
            }
        };
    for w in order.windows(2) {
        push_if_upcoming(&mut events, w[0], w[1]);
    }

    let mut regions = Vec::new();
    let mut theta_prev = interval.lo();
    while let Some(Reverse((F64Key(theta), a, b))) = events.pop() {
        // Lazy validation: still adjacent in pre-exchange orientation?
        let (pa, pb) = (pos[a as usize], pos[b as usize]);
        if pa + 1 != pb || data.item(a as usize)[0] <= data.item(b as usize)[0] {
            continue; // stale event
        }
        // Close the region ending at this exchange (skip zero-width slices
        // produced by simultaneous exchanges).
        if theta > theta_prev {
            regions.push(Region2DInfo {
                lo: theta_prev,
                hi: theta,
                stability: (theta - theta_prev) / span,
            });
            if let Some(s) = &mut snapshots {
                s.push(Ranking::from_order_unchecked(order.clone()));
            }
            theta_prev = theta;
        }
        // Perform the exchange.
        order.swap(pa as usize, pb as usize);
        pos[a as usize] = pb;
        pos[b as usize] = pa;
        // New adjacencies: (prev, b) and (a, next).
        if pa > 0 {
            push_if_upcoming(&mut events, order[(pa - 1) as usize], b);
        }
        if (pb as usize) < n - 1 {
            push_if_upcoming(&mut events, a, order[(pb + 1) as usize]);
        }
    }
    regions.push(Region2DInfo {
        lo: theta_prev,
        hi: interval.hi(),
        stability: (interval.hi() - theta_prev) / span,
    });
    if let Some(s) = &mut snapshots {
        s.push(Ranking::from_order_unchecked(order));
    }
    (regions, snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sv2d::stability_verify_2d;

    #[test]
    fn figure1_has_eleven_regions() {
        let data = Dataset::figure1();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        assert_eq!(e.num_regions(), 11, "Figure 1c shows 11 regions");
    }

    #[test]
    fn regions_partition_the_interval() {
        let data = Dataset::figure1();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let regions = e.regions();
        assert_eq!(regions[0].lo, 0.0);
        assert!((regions.last().unwrap().hi - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        for w in regions.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-12, "gap between regions");
        }
        let total: f64 = regions.iter().map(|r| r.stability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn each_region_has_a_constant_ranking() {
        let data = Dataset::figure1();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        for r in e.regions() {
            let probes = [
                r.lo + r.hi * 1e-6 + 1e-9,
                r.midpoint(),
                r.hi - (r.hi - r.lo) * 1e-6,
            ];
            let rankings: Vec<Ranking> = probes
                .iter()
                .map(|&t| data.rank(&weight_from_angle_2d(t)).unwrap())
                .collect();
            assert_eq!(rankings[0], rankings[1]);
            assert_eq!(rankings[1], rankings[2]);
        }
    }

    #[test]
    fn adjacent_regions_have_distinct_rankings() {
        let data = Dataset::figure1();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let rankings: Vec<Ranking> = e
            .regions()
            .iter()
            .map(|r| data.rank(&weight_from_angle_2d(r.midpoint())).unwrap())
            .collect();
        for w in rankings.windows(2) {
            assert_ne!(w[0], w[1], "adjacent regions must differ");
        }
        // And globally: Theorem 1's one-to-one mapping.
        for i in 0..rankings.len() {
            for j in (i + 1)..rankings.len() {
                assert_ne!(rankings[i], rankings[j], "regions {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn get_next_is_ordered_by_stability() {
        let data = Dataset::figure1();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let mut prev = f64::INFINITY;
        let mut count = 0;
        while let Some(s) = e.get_next() {
            assert!(
                s.stability <= prev + 1e-12,
                "stability must be non-increasing"
            );
            prev = s.stability;
            count += 1;
        }
        assert_eq!(count, 11);
    }

    #[test]
    fn get_next_agrees_with_sv2d() {
        let data = Dataset::figure1();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        while let Some(s) = e.get_next() {
            let v = stability_verify_2d(&data, &s.ranking, AngleInterval::full())
                .unwrap()
                .expect("enumerated rankings are feasible");
            assert!(
                (v.stability - s.stability).abs() < 1e-9,
                "sweep {} vs SV2D {}",
                s.stability,
                v.stability
            );
            assert!((v.region.lo() - s.region.lo).abs() < 1e-9);
            assert!((v.region.hi() - s.region.hi).abs() < 1e-9);
        }
    }

    #[test]
    fn narrow_interval_enumerates_a_subset() {
        let data = Dataset::figure1();
        let full_count = Enumerator2D::new(&data, AngleInterval::full())
            .unwrap()
            .num_regions();
        let narrow = AngleInterval::new(0.6, 0.9).unwrap();
        let e = Enumerator2D::new(&data, narrow).unwrap();
        assert!(e.num_regions() < full_count);
        assert!(e.num_regions() >= 1);
        let total: f64 = e.regions().iter().map(|r| r.stability).sum();
        assert!((total - 1.0).abs() < 1e-9, "stability renormalizes to U*");
    }

    #[test]
    fn top_h_and_threshold_batches() {
        let data = Dataset::figure1();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let top3 = e.top_h(3);
        assert_eq!(top3.len(), 3);
        assert!(top3[0].stability >= top3[1].stability);
        assert!(top3[1].stability >= top3[2].stability);

        let mut e2 = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let thresh = top3[1].stability;
        let batch = e2.with_stability_at_least(thresh);
        assert!(batch.len() >= 2);
        assert!(batch.iter().all(|s| s.stability >= thresh));
    }

    #[test]
    fn single_item_dataset_has_one_region() {
        let data = Dataset::from_rows(&[vec![0.4, 0.6]]).unwrap();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let only = e.get_next().unwrap();
        assert_eq!(only.stability, 1.0);
        assert!(e.get_next().is_none());
    }

    #[test]
    fn dominance_chain_has_single_region() {
        // Total dominance order ⇒ one ranking everywhere.
        let data = Dataset::from_rows(&[vec![0.9, 0.9], vec![0.5, 0.5], vec![0.1, 0.1]]).unwrap();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        assert_eq!(e.num_regions(), 1);
    }

    #[test]
    fn duplicate_items_do_not_break_the_sweep() {
        let data = Dataset::from_rows(&[
            vec![0.63, 0.71],
            vec![0.63, 0.71], // exact duplicate of item 0
            vec![0.83, 0.65],
            vec![0.53, 0.82],
        ])
        .unwrap();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let total: f64 = e.regions().iter().map(|r| r.stability).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Duplicates stay in index order in every region's ranking.
        for r in e.regions() {
            let rk = data.rank(&weight_from_angle_2d(r.midpoint())).unwrap();
            assert!(rk.rank_of(0).unwrap() < rk.rank_of(1).unwrap());
        }
    }

    #[test]
    fn stored_rankings_match_recomputed_ones() {
        // The O(log n) stored variant must return exactly the same stream
        // as the recompute variant, region by region.
        let mut state = 0xCAFEu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let rows: Vec<Vec<f64>> = (0..25).map(|_| vec![next(), next()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let mut recompute = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let mut stored = Enumerator2D::new_storing_rankings(&data, AngleInterval::full()).unwrap();
        loop {
            match (recompute.get_next(), stored.get_next()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.ranking, b.ranking);
                    assert_eq!(a.stability, b.stability);
                    assert_eq!(a.region, b.region);
                }
                other => panic!("streams diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn stored_variant_works_on_narrow_intervals_and_singletons() {
        let data = Dataset::from_rows(&[vec![0.4, 0.6]]).unwrap();
        let mut e = Enumerator2D::new_storing_rankings(&data, AngleInterval::full()).unwrap();
        assert_eq!(e.get_next().unwrap().ranking.order(), &[0]);

        let data = Dataset::figure1();
        let narrow = AngleInterval::new(0.7, 0.9).unwrap();
        let mut stored = Enumerator2D::new_storing_rankings(&data, narrow).unwrap();
        let mut plain = Enumerator2D::new(&data, narrow).unwrap();
        while let (Some(a), Some(b)) = (stored.get_next(), plain.get_next()) {
            assert_eq!(a.ranking, b.ranking);
        }
    }

    #[test]
    fn detached_state_resumes_exactly_where_it_left_off() {
        let data = Dataset::figure1();
        let mut reference = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let mut session = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        // Interleave detach/reattach between every call: the streams must
        // be identical and validation must hold.
        loop {
            let state = session.into_state();
            assert_eq!(state.num_regions(), 11);
            session = Enumerator2D::from_state(&data, state).unwrap();
            match (reference.get_next(), session.get_next()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.ranking, b.ranking);
                    assert_eq!(a.stability, b.stability);
                }
                other => panic!("streams diverged: {other:?}"),
            }
        }
        assert_eq!(session.into_state().remaining(), 0);
    }

    #[test]
    fn from_state_rejects_mismatched_datasets() {
        let data = Dataset::figure1();
        let state = Enumerator2D::new(&data, AngleInterval::full())
            .unwrap()
            .into_state();
        let other = Dataset::from_rows(&[vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert!(Enumerator2D::from_state(&other, state.clone()).is_err());
        let three_d = Dataset::from_rows(&vec![vec![0.1, 0.2, 0.3]; 5]).unwrap();
        assert!(Enumerator2D::from_state(&three_d, state).is_err());
    }

    #[test]
    fn region_count_matches_brute_force_on_random_data() {
        // Deterministic LCG data, cross-checked against a dense angle scan.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let rows: Vec<Vec<f64>> = (0..30).map(|_| vec![next(), next()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        // Dense scan: count ranking changes across 200k probes.
        let probes = 200_000;
        let mut distinct = 1usize;
        let mut prev = data.rank(&weight_from_angle_2d(1e-9)).unwrap();
        for i in 1..probes {
            let t = std::f64::consts::FRAC_PI_2 * (i as f64 + 0.5) / probes as f64;
            let r = data.rank(&weight_from_angle_2d(t)).unwrap();
            if r != prev {
                distinct += 1;
                prev = r;
            }
        }
        assert_eq!(e.num_regions(), distinct, "sweep vs dense scan");
    }
}
