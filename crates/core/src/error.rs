//! Error types for the ranking-stability API.

use std::fmt;

/// Errors surfaced by the public API of `srank-core`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StableRankError {
    /// A dataset, weight vector, ranking, or region of interest disagreed
    /// on the number of scoring attributes.
    DimensionMismatch { expected: usize, got: usize },
    /// A 2-D-only algorithm received a dataset with `d ≠ 2`.
    NeedTwoDimensions { got: usize },
    /// The dataset has no items (or no attributes).
    EmptyDataset,
    /// Weight vectors must be non-negative, finite, and not all zero.
    InvalidWeights(String),
    /// A ranking did not name every item exactly once.
    InvalidRanking(String),
    /// The region of interest admits no scoring function (or no sample
    /// could be drawn from it).
    EmptyRegionOfInterest,
}

impl fmt::Display for StableRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StableRankError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} attributes, got {got}"
                )
            }
            StableRankError::NeedTwoDimensions { got } => {
                write!(
                    f,
                    "this algorithm requires exactly 2 scoring attributes, got {got}"
                )
            }
            StableRankError::EmptyDataset => write!(f, "dataset has no items"),
            StableRankError::InvalidWeights(msg) => write!(f, "invalid weight vector: {msg}"),
            StableRankError::InvalidRanking(msg) => write!(f, "invalid ranking: {msg}"),
            StableRankError::EmptyRegionOfInterest => {
                write!(f, "region of interest contains no scoring function")
            }
        }
    }
}

impl std::error::Error for StableRankError {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, StableRankError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StableRankError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(StableRankError::NeedTwoDimensions { got: 5 }
            .to_string()
            .contains('5'));
        assert!(StableRankError::EmptyDataset
            .to_string()
            .contains("no items"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(StableRankError::EmptyDataset);
    }
}
