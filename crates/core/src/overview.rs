//! Stability overviews and tolerance-aggregated stability.
//!
//! Two extensions the paper sketches but does not implement:
//!
//! * §1 promises "an overview of all the rankings that occupy a large
//!   portion in the acceptable region … along with an indication of the
//!   fraction … occupied by each". [`StabilityOverview`] is that summary:
//!   the sorted stability distribution with cumulative coverage, plus
//!   concentration statistics.
//! * §8 (final remarks): "Our current definition of stability considers
//!   two rankings to be different if they differ in one pair of items. An
//!   alternative is to allow minor changes in the ranking."
//!   [`tau_tolerant_stability`] implements that alternative: the τ-tolerant
//!   stability of a ranking is the total stability mass of all rankings
//!   within Kendall-tau distance τ of it.

use crate::error::{Result, StableRankError};
use crate::ranking::Ranking;

/// One ranking's share in an overview.
#[derive(Clone, Debug, PartialEq)]
pub struct OverviewEntry {
    /// Stability of this ranking (share of `U*`).
    pub stability: f64,
    /// Total stability of this and all more-stable rankings.
    pub cumulative: f64,
}

/// A producer-facing summary of how stability mass is distributed over the
/// feasible rankings of a region of interest.
#[derive(Clone, Debug, PartialEq)]
pub struct StabilityOverview {
    entries: Vec<OverviewEntry>,
}

impl StabilityOverview {
    /// Builds an overview from per-ranking stabilities (any order). Values
    /// must be non-negative; they need not sum to 1 (e.g. a truncated
    /// enumeration), but cumulative coverage is reported against 1.
    pub fn from_stabilities(mut stabilities: Vec<f64>) -> Result<Self> {
        if stabilities.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(StableRankError::InvalidRanking(
                "stabilities must be finite and non-negative".into(),
            ));
        }
        stabilities.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut cumulative = 0.0;
        let entries = stabilities
            .into_iter()
            .map(|stability| {
                cumulative += stability;
                OverviewEntry {
                    stability,
                    cumulative,
                }
            })
            .collect();
        Ok(Self { entries })
    }

    /// Number of feasible rankings summarized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in descending stability order.
    pub fn entries(&self) -> &[OverviewEntry] {
        &self.entries
    }

    /// How many of the most stable rankings are needed to cover at least
    /// `fraction` of the region of interest; `None` if the summarized mass
    /// never reaches it (truncated enumerations).
    pub fn rankings_to_cover(&self, fraction: f64) -> Option<usize> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must lie in [0, 1]"
        );
        self.entries
            .iter()
            .position(|e| e.cumulative >= fraction)
            .map(|p| p + 1)
    }

    /// Total summarized stability mass (1.0 for a complete enumeration).
    pub fn total_mass(&self) -> f64 {
        self.entries.last().map_or(0.0, |e| e.cumulative)
    }

    /// Shannon entropy (nats) of the stability distribution, normalized by
    /// the summarized mass: low entropy ⇒ a few rankings dominate `U*`
    /// (the "stable" regime), high entropy ⇒ the region is shattered into
    /// many near-tied rankings.
    pub fn entropy(&self) -> f64 {
        let total = self.total_mass();
        if total <= 0.0 {
            return 0.0;
        }
        -self
            .entries
            .iter()
            .filter(|e| e.stability > 0.0)
            .map(|e| {
                let p = e.stability / total;
                p * p.ln()
            })
            .sum::<f64>()
    }

    /// The effective number of rankings `exp(entropy)` — 1.0 when a single
    /// ranking owns everything, `len()` when all are equally likely.
    pub fn effective_rankings(&self) -> f64 {
        self.entropy().exp()
    }
}

/// §8's tolerant stability: the total stability of all rankings within
/// Kendall-tau distance `tau` of `center`, given the (ranking, stability)
/// pairs of an enumeration.
///
/// With `tau = 0` this is the ordinary stability of `center` (0 if it is
/// infeasible). Monotone in `tau`, reaching the enumeration's total mass
/// once `tau ≥ n(n−1)/2`.
pub fn tau_tolerant_stability(
    center: &Ranking,
    enumeration: &[(Ranking, f64)],
    tau: usize,
) -> Result<f64> {
    let mut total = 0.0;
    for (r, s) in enumeration {
        if center.kendall_tau_distance(r)? <= tau {
            total += s;
        }
    }
    Ok(total)
}

/// The most τ-tolerant-stable ranking of an enumeration: the member whose
/// τ-ball carries the most stability mass. Ties break toward the ranking
/// with higher own stability, then enumeration order.
pub fn most_tau_stable(enumeration: &[(Ranking, f64)], tau: usize) -> Result<Option<(usize, f64)>> {
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, (r, own)) in enumeration.iter().enumerate() {
        let ball = tau_tolerant_stability(r, enumeration, tau)?;
        let better = match &best {
            None => true,
            Some((_, bb, bo)) => ball > *bb + 1e-15 || ((ball - *bb).abs() <= 1e-15 && *own > *bo),
        };
        if better {
            best = Some((i, ball, *own));
        }
    }
    Ok(best.map(|(i, ball, _)| (i, ball)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::sv2d::AngleInterval;
    use crate::sweep2d::Enumerator2D;

    fn figure1_enumeration() -> Vec<(Ranking, f64)> {
        let data = Dataset::figure1();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        std::iter::from_fn(|| e.get_next())
            .map(|s| (s.ranking, s.stability))
            .collect()
    }

    #[test]
    fn overview_sorts_and_accumulates() {
        let o = StabilityOverview::from_stabilities(vec![0.1, 0.5, 0.4]).unwrap();
        let stabilities: Vec<f64> = o.entries().iter().map(|e| e.stability).collect();
        assert_eq!(stabilities, vec![0.5, 0.4, 0.1]);
        assert!((o.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(o.rankings_to_cover(0.5), Some(1));
        assert_eq!(o.rankings_to_cover(0.9), Some(2));
        assert_eq!(o.rankings_to_cover(1.0), Some(3));
    }

    #[test]
    fn overview_rejects_bad_input() {
        assert!(StabilityOverview::from_stabilities(vec![0.1, -0.2]).is_err());
        assert!(StabilityOverview::from_stabilities(vec![f64::NAN]).is_err());
    }

    #[test]
    fn truncated_mass_reports_none_for_uncovered_fraction() {
        let o = StabilityOverview::from_stabilities(vec![0.2, 0.1]).unwrap();
        assert_eq!(o.rankings_to_cover(0.25), Some(2));
        assert_eq!(o.rankings_to_cover(0.5), None);
    }

    #[test]
    fn entropy_extremes() {
        let single = StabilityOverview::from_stabilities(vec![1.0]).unwrap();
        assert!(single.entropy().abs() < 1e-12);
        assert!((single.effective_rankings() - 1.0).abs() < 1e-12);
        let uniform = StabilityOverview::from_stabilities(vec![0.25; 4]).unwrap();
        assert!((uniform.effective_rankings() - 4.0).abs() < 1e-9);
        // Skewed sits in between.
        let skewed = StabilityOverview::from_stabilities(vec![0.7, 0.1, 0.1, 0.1]).unwrap();
        assert!(skewed.effective_rankings() > 1.0);
        assert!(skewed.effective_rankings() < 4.0);
    }

    #[test]
    fn figure1_overview_coverage() {
        let enumeration = figure1_enumeration();
        let o = StabilityOverview::from_stabilities(enumeration.iter().map(|(_, s)| *s).collect())
            .unwrap();
        assert_eq!(o.len(), 11);
        assert!((o.total_mass() - 1.0).abs() < 1e-9);
        // The top region holds ~39.5%, so covering half of U takes 2
        // rankings and covering 90% takes most of them.
        assert_eq!(o.rankings_to_cover(0.5), Some(2));
        assert!(o.rankings_to_cover(0.9).unwrap() >= 5);
    }

    #[test]
    fn tau_zero_is_own_stability() {
        let enumeration = figure1_enumeration();
        for (r, s) in &enumeration {
            let t0 = tau_tolerant_stability(r, &enumeration, 0).unwrap();
            assert!((t0 - s).abs() < 1e-12);
        }
    }

    #[test]
    fn tau_is_monotone_and_saturates() {
        let enumeration = figure1_enumeration();
        let center = &enumeration[0].0;
        let mut prev = 0.0;
        for tau in 0..=10 {
            let v = tau_tolerant_stability(center, &enumeration, tau).unwrap();
            assert!(v >= prev - 1e-12, "τ-tolerant stability must be monotone");
            prev = v;
        }
        // n = 5 ⇒ max distance 10: the ball swallows everything.
        let all = tau_tolerant_stability(center, &enumeration, 10).unwrap();
        assert!((all - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tolerance_can_change_the_winner() {
        // Three rankings: a lone spike vs two adjacent rankings that share
        // mass; with τ = 1 the adjacent pair should win.
        let a = Ranking::new(vec![0, 1, 2]).unwrap(); // spike, 0.4
        let b = Ranking::new(vec![2, 1, 0]).unwrap(); // 0.35, adjacent to c
        let c = Ranking::new(vec![2, 0, 1]).unwrap(); // 0.25, τ(b,c) = 1
        let enumeration = vec![(a, 0.4), (b, 0.35), (c, 0.25)];
        let (winner0, mass0) = most_tau_stable(&enumeration, 0).unwrap().unwrap();
        assert_eq!(winner0, 0);
        assert!((mass0 - 0.4).abs() < 1e-12);
        let (winner1, mass1) = most_tau_stable(&enumeration, 1).unwrap().unwrap();
        assert_eq!(winner1, 1, "the τ-ball of b covers c and beats the spike");
        assert!((mass1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_enumeration() {
        assert!(most_tau_stable(&[], 3).unwrap().is_none());
        let o = StabilityOverview::from_stabilities(vec![]).unwrap();
        assert!(o.is_empty());
        assert_eq!(o.rankings_to_cover(0.1), None);
    }
}
