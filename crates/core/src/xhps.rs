//! Ordering-exchange hyperplane enumeration — `×hps`, Algorithm 5 (§4.2).
//!
//! Collects the `O(n²)` ordering-exchange hyperplanes of all
//! non-dominating item pairs that actually pass through the region of
//! interest. Intersection with `U*` is decided analytically where a closed
//! form exists (full orthant, cones) and by sample witnesses otherwise —
//! the same sampled `passThrough` the arrangement construction uses (§5.4).

use crate::dataset::Dataset;
use srank_geom::hyperplane::OrderingExchange;
use srank_geom::vector::{dot, norm};
use srank_geom::EPS;
use srank_sample::roi::RegionOfInterest;
use srank_sample::store::SampleBuffer;

/// Whether the origin-through hyperplane with the given normal intersects
/// the *interior* of the region of interest.
///
/// * Full orthant: it does iff the normal has strictly mixed signs —
///   otherwise one open side misses the orthant entirely.
/// * Cone of angle θ around `ray`: the angular distance from the ray to
///   the hyperplane is `|π/2 − ∠(normal, ray)|`, so the hyperplane cuts
///   the cap iff `|normal·ray| < sin θ · ‖normal‖`.
/// * Constraint set: decided by sample witnesses on both sides.
pub fn hyperplane_intersects_roi(
    hp: &OrderingExchange,
    roi: &RegionOfInterest,
    samples: &SampleBuffer,
) -> bool {
    let coeffs = hp.coeffs();
    match roi {
        RegionOfInterest::FullOrthant { .. } => {
            let has_pos = coeffs.iter().any(|&c| c > EPS);
            let has_neg = coeffs.iter().any(|&c| c < -EPS);
            has_pos && has_neg
        }
        RegionOfInterest::Cone { ray, theta, .. } => {
            let nn = norm(coeffs);
            if nn <= EPS {
                return false;
            }
            (dot(coeffs, ray).abs() / nn) < theta.sin()
        }
        RegionOfInterest::Constraints { .. } => {
            let mut saw_pos = false;
            let mut saw_neg = false;
            for w in samples.iter_rows() {
                let v = hp.eval(w);
                if v > 0.0 {
                    saw_pos = true;
                } else if v < 0.0 {
                    saw_neg = true;
                }
                if saw_pos && saw_neg {
                    return true;
                }
            }
            false
        }
    }
}

/// Algorithm 5: the ordering-exchange hyperplanes of all non-dominating
/// pairs intersecting `U*`, in deterministic `(i, j)` pair order.
pub fn ordering_exchange_hyperplanes(
    data: &Dataset,
    roi: &RegionOfInterest,
    samples: &SampleBuffer,
) -> Vec<OrderingExchange> {
    let n = data.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if data.dominates(i, j) || data.dominates(j, i) {
                continue;
            }
            let hp = OrderingExchange::from_pair(data.item(i), data.item(j));
            if hp.is_degenerate() {
                continue; // identical items never exchange
            }
            if hyperplane_intersects_roi(&hp, roi, samples) {
                out.push(hp);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn samples_for(roi: &RegionOfInterest, seed: u64, n: usize) -> SampleBuffer {
        let mut rng = StdRng::seed_from_u64(seed);
        roi.sampler().sample_buffer(&mut rng, n)
    }

    #[test]
    fn figure1_produces_ten_hyperplanes_in_u() {
        // 5 items, no dominance ⇒ C(5,2) = 10 exchanges, all inside U
        // (Figure 1c shows all ten dual intersections in the quadrant).
        let data = Dataset::figure1();
        let roi = RegionOfInterest::full(2);
        let samples = samples_for(&roi, 1, 100);
        let hps = ordering_exchange_hyperplanes(&data, &roi, &samples);
        assert_eq!(hps.len(), 10);
    }

    #[test]
    fn dominance_pairs_are_skipped() {
        let data = Dataset::from_rows(&[vec![0.9, 0.9], vec![0.1, 0.5], vec![0.8, 0.2]]).unwrap();
        let roi = RegionOfInterest::full(2);
        let samples = samples_for(&roi, 2, 100);
        let hps = ordering_exchange_hyperplanes(&data, &roi, &samples);
        // Pairs: (0,1) and (0,2) are dominance; only (1,2) exchanges.
        assert_eq!(hps.len(), 1);
    }

    #[test]
    fn narrow_cone_filters_hyperplanes() {
        let data = Dataset::figure1();
        let full = RegionOfInterest::full(2);
        let full_samples = samples_for(&full, 3, 200);
        let all = ordering_exchange_hyperplanes(&data, &full, &full_samples);

        // A narrow cone around the diagonal keeps only exchanges near π/4.
        let cone = RegionOfInterest::cone(&[1.0, 1.0], PI / 60.0);
        let cone_samples = samples_for(&cone, 4, 200);
        let filtered = ordering_exchange_hyperplanes(&data, &cone, &cone_samples);
        assert!(filtered.len() < all.len());
    }

    #[test]
    fn analytic_cone_test_matches_sampled_witnesses() {
        let data = Dataset::figure1();
        let cone = RegionOfInterest::cone(&[1.0, 1.0], PI / 20.0);
        let samples = samples_for(&cone, 5, 20_000);
        for i in 0..5 {
            for j in (i + 1)..5 {
                let hp = OrderingExchange::from_pair(data.item(i), data.item(j));
                let analytic = hyperplane_intersects_roi(&hp, &cone, &samples);
                // Sampled ground truth.
                let mut pos = false;
                let mut neg = false;
                for w in samples.iter_rows() {
                    if hp.eval(w) > 0.0 {
                        pos = true;
                    } else {
                        neg = true;
                    }
                }
                let sampled = pos && neg;
                assert_eq!(
                    analytic, sampled,
                    "pair ({i},{j}): analytic {analytic} vs sampled {sampled}"
                );
            }
        }
    }

    #[test]
    fn orthant_mixed_sign_rule() {
        let roi = RegionOfInterest::full(3);
        let samples = samples_for(&roi, 6, 10);
        let crossing = OrderingExchange::from_coeffs(vec![0.5, -0.3, 0.1]);
        assert!(hyperplane_intersects_roi(&crossing, &roi, &samples));
        let onesided = OrderingExchange::from_coeffs(vec![0.5, 0.3, 0.0]);
        assert!(!hyperplane_intersects_roi(&onesided, &roi, &samples));
    }

    #[test]
    fn constraint_roi_uses_witnesses() {
        use srank_geom::hyperplane::HalfSpace;
        // U* = {w1 ≥ w2} ∩ orthant.
        let roi = RegionOfInterest::constraints(2, vec![HalfSpace::new(vec![1.0, -1.0])]);
        let samples = samples_for(&roi, 7, 2000);
        // w1 = 2·w2 passes through U*.
        let inside = OrderingExchange::from_coeffs(vec![1.0, -2.0]);
        assert!(hyperplane_intersects_roi(&inside, &roi, &samples));
        // w1 = w2/2 lies outside U*.
        let outside = OrderingExchange::from_coeffs(vec![1.0, -0.5]);
        assert!(!hyperplane_intersects_roi(&outside, &roi, &samples));
    }

    #[test]
    fn identical_items_yield_no_hyperplane() {
        let data = Dataset::from_rows(&[vec![0.4, 0.6], vec![0.4, 0.6]]).unwrap();
        let roi = RegionOfInterest::full(2);
        let samples = samples_for(&roi, 8, 50);
        assert!(ordering_exchange_hyperplanes(&data, &roi, &samples).is_empty());
    }

    #[test]
    fn count_is_quadratic_without_dominance() {
        // Anti-correlated line: no dominance at all ⇒ all C(n,2) pairs.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64 / 11.0, 1.0 - i as f64 / 11.0])
            .collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let roi = RegionOfInterest::full(2);
        let samples = samples_for(&roi, 9, 100);
        assert_eq!(
            ordering_exchange_hyperplanes(&data, &roi, &samples).len(),
            12 * 11 / 2
        );
    }
}
