//! Weight justification: the max-margin scoring function of a ranking.
//!
//! A producer who wants to *defend* a published ranking benefits from
//! weights that sit as deep inside the ranking's region as possible — then
//! the largest possible perturbation is needed before any pair of items
//! swaps. This module computes those weights exactly: the LP of
//! `srank-geom::lp` maximizes the minimum ordering-exchange slack over the
//! weight simplex, a Chebyshev-like center of the ranking region.
//!
//! (The paper's §8 notes that a weight vector is a single point of a stable
//! region and that characterizing the region's interior would be useful —
//! this is that characterization's most actionable point.)

use crate::dataset::Dataset;
use crate::error::Result;
use crate::ranking::Ranking;
use crate::svmd::ranking_region_md;
use srank_geom::lp::{cone_feasible, LpOutcome};

/// The deepest-interior scoring function of a ranking's region.
#[derive(Clone, Debug, PartialEq)]
pub struct MaxMarginWeights {
    /// Weights on the simplex (`Σ w_j = 1`, `w ≥ 0`).
    pub weights: Vec<f64>,
    /// The minimum score gap between adjacent items of the ranking under
    /// these weights — the LP's maximized slack. Larger is more defensible.
    pub margin: f64,
}

/// Computes the max-margin weights generating `ranking`, or `None` when the
/// ranking is infeasible (no scoring function generates it).
///
/// # Errors
/// Fails if the ranking does not match the dataset.
pub fn max_margin_weights(data: &Dataset, ranking: &Ranking) -> Result<Option<MaxMarginWeights>> {
    let Some(region) = ranking_region_md(data, ranking)? else {
        return Ok(None);
    };
    match cone_feasible(&region) {
        LpOutcome::Interior { w, slack } => {
            // A dominance-chain ranking has no constraints; any simplex
            // point works and the margin is unbounded — report the actual
            // minimum adjacent score gap instead of ∞.
            let margin = if slack.is_finite() {
                slack
            } else {
                min_adjacent_gap(data, ranking, &w)
            };
            Ok(Some(MaxMarginWeights { weights: w, margin }))
        }
        LpOutcome::BoundaryOnly | LpOutcome::Empty => Ok(None),
    }
}

fn min_adjacent_gap(data: &Dataset, ranking: &Ranking, w: &[f64]) -> f64 {
    ranking
        .order()
        .windows(2)
        .map(|p| data.score(p[0] as usize, w) - data.score(p[1] as usize, w))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sv2d::AngleInterval;
    use crate::sweep2d::Enumerator2D;

    #[test]
    fn max_margin_weights_generate_the_ranking() {
        let data = Dataset::figure1();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        while let Some(s) = e.get_next() {
            let mm = max_margin_weights(&data, &s.ranking)
                .unwrap()
                .expect("enumerated rankings are feasible");
            assert_eq!(data.rank(&mm.weights).unwrap(), s.ranking);
            assert!(mm.margin > 0.0);
            assert!((mm.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn margin_beats_arbitrary_members() {
        // The max-margin point's minimum adjacent gap must be at least that
        // of the region midpoint's weights (scaled to the simplex).
        let data = Dataset::figure1();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let top = e.get_next().unwrap();
        let mm = max_margin_weights(&data, &top.ranking).unwrap().unwrap();

        let theta = top.region.midpoint();
        let raw = [theta.cos(), theta.sin()];
        let sum = raw[0] + raw[1];
        let mid_simplex = [raw[0] / sum, raw[1] / sum];

        let gap_mm = min_adjacent_gap(&data, &top.ranking, &mm.weights);
        let gap_mid = min_adjacent_gap(&data, &top.ranking, &mid_simplex);
        assert!(
            gap_mm >= gap_mid - 1e-12,
            "max-margin gap {gap_mm} must beat midpoint gap {gap_mid}"
        );
        assert!(
            (gap_mm - mm.margin).abs() < 1e-9,
            "margin is the realized min gap"
        );
    }

    #[test]
    fn infeasible_ranking_yields_none() {
        let data = Dataset::from_rows(&[vec![0.9, 0.9], vec![0.1, 0.1]]).unwrap();
        let bad = Ranking::new(vec![1, 0]).unwrap();
        assert!(max_margin_weights(&data, &bad).unwrap().is_none());
    }

    #[test]
    fn dominance_chain_has_finite_reported_margin() {
        let data = Dataset::from_rows(&[vec![0.9, 0.8], vec![0.5, 0.5], vec![0.2, 0.1]]).unwrap();
        let r = Ranking::new(vec![0, 1, 2]).unwrap();
        let mm = max_margin_weights(&data, &r).unwrap().unwrap();
        assert!(mm.margin.is_finite());
        assert!(mm.margin > 0.0);
        assert_eq!(data.rank(&mm.weights).unwrap(), r);
    }

    #[test]
    fn works_in_higher_dimensions() {
        let rows = vec![
            vec![0.8, 0.3, 0.5],
            vec![0.2, 0.9, 0.4],
            vec![0.5, 0.5, 0.8],
            vec![0.6, 0.1, 0.9],
        ];
        let data = Dataset::from_rows(&rows).unwrap();
        let r = data.rank(&[0.4, 0.3, 0.3]).unwrap();
        let mm = max_margin_weights(&data, &r).unwrap().unwrap();
        assert_eq!(data.rank(&mm.weights).unwrap(), r);
        // The margin is the worst adjacent gap; verify against a scan.
        assert!((min_adjacent_gap(&data, &r, &mm.weights) - mm.margin).abs() < 1e-9);
    }

    #[test]
    fn thin_regions_get_small_margins() {
        // Two near-identical items make every separating region thin; the
        // margin must reflect that.
        let data =
            Dataset::from_rows(&[vec![0.500, 0.500], vec![0.501, 0.499], vec![0.9, 0.1]]).unwrap();
        let r = data.rank(&[0.5, 0.5]).unwrap();
        let mm = max_margin_weights(&data, &r).unwrap().unwrap();
        assert!(mm.margin < 0.01, "margin {} should be tiny", mm.margin);
    }
}
