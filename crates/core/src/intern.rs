//! A key-interning count table for the randomized operator's accumulator.
//!
//! The randomized `GET-NEXT` operator counts how often each (partial)
//! ranking key is induced by a sampled scoring function. The natural
//! `HashMap<Vec<u32>, Stats>` pays, on *every* sample, one heap
//! allocation for the owned key, one SipHash pass over it, and — across
//! table growth — a full re-hash of every stored key. [`KeyInterner`]
//! removes all of that:
//!
//! * **Fixed-stride arena** — every key of one enumeration has the same
//!   length (`n` for the full scope, `min(k, n)` for the top-k scopes),
//!   so keys live back-to-back in a single `Vec<u32>` and entry `e`'s key
//!   is the slice at `e · stride`. A key is materialized exactly once, on
//!   first observation; a repeat observation allocates nothing.
//! * **Cached hashes** — a fast deterministic multi-lane hash is computed
//!   from the caller's *scratch slice* (no owned key needed to probe) and
//!   stored per entry, so growing the open-addressing slot array never
//!   re-reads key bytes.
//! * **Insertion-order entries** — entries are appended and never move,
//!   which gives deterministic iteration (unlike `HashMap`) and lets the
//!   enumerator track per-entry flags (e.g. "already returned") in a
//!   parallel `Vec<bool>` indexed by entry id.
//!
//! Exemplar weight vectors (one per distinct key, the first scoring
//! function observed to generate it) live in a second fixed-stride arena.
//!
//! ## Invariants
//!
//! * `keys.len() == len() · stride`, `exemplars.len() == len() · dim`,
//!   `hashes.len() == counts.len() == len()`.
//! * `slots` is a power-of-two open-addressing table of `entry + 1`
//!   values (`0` = empty) kept under ¾ load; every entry appears in
//!   exactly one slot.
//! * Entry ids are dense, stable, and ordered by first observation.

/// Deterministic 64-bit hash of a `u32` key sequence. Two accumulation
/// lanes over pairs of packed words keep the multiply chain short enough
/// to pipeline on long (full-ranking) keys; a SplitMix64 finalizer
/// avalanches the combined state.
#[inline]
pub fn hash_key(key: &[u32]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h0: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h1: u64 = 0xc2b2_ae3d_27d4_eb4f;
    let mut chunks = key.chunks_exact(4);
    for c in &mut chunks {
        let a = ((c[0] as u64) << 32) | c[1] as u64;
        let b = ((c[2] as u64) << 32) | c[3] as u64;
        h0 = (h0.rotate_left(5) ^ a).wrapping_mul(K);
        h1 = (h1.rotate_left(5) ^ b).wrapping_mul(K);
    }
    for &v in chunks.remainder() {
        h0 = (h0.rotate_left(5) ^ v as u64).wrapping_mul(K);
    }
    let mut h = h0 ^ h1.rotate_left(32) ^ key.len() as u64;
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The interning count table: distinct fixed-length `u32` keys, each with
/// an observation count and an exemplar `f64` vector.
#[derive(Clone, Debug)]
pub struct KeyInterner {
    stride: usize,
    dim: usize,
    keys: Vec<u32>,
    counts: Vec<u64>,
    exemplars: Vec<f64>,
    hashes: Vec<u64>,
    /// Open addressing: `entry + 1`, `0` = empty. Power-of-two length.
    slots: Vec<u32>,
}

const INITIAL_SLOTS: usize = 64;

impl KeyInterner {
    /// An empty table for keys of length `stride` and exemplars of length
    /// `dim`.
    pub fn new(stride: usize, dim: usize) -> Self {
        Self {
            stride,
            dim,
            keys: Vec::new(),
            counts: Vec::new(),
            exemplars: Vec::new(),
            hashes: Vec::new(),
            slots: vec![0; INITIAL_SLOTS],
        }
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Key length this table interns.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Exemplar length this table stores.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `e`'s key.
    #[inline]
    pub fn key(&self, e: u32) -> &[u32] {
        let e = e as usize;
        &self.keys[e * self.stride..(e + 1) * self.stride]
    }

    /// Entry `e`'s observation count.
    #[inline]
    pub fn count(&self, e: u32) -> u64 {
        self.counts[e as usize]
    }

    /// Entry `e`'s exemplar (the first weight vector observed to generate
    /// the key).
    #[inline]
    pub fn exemplar(&self, e: u32) -> &[f64] {
        let e = e as usize;
        &self.exemplars[e * self.dim..(e + 1) * self.dim]
    }

    /// Entries in insertion (first-observation) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32], u64, &[f64])> + '_ {
        (0..self.len() as u32).map(move |e| (e, self.key(e), self.count(e), self.exemplar(e)))
    }

    /// The entry holding `key`, if interned.
    pub fn lookup(&self, key: &[u32]) -> Option<u32> {
        debug_assert_eq!(key.len(), self.stride);
        let h = hash_key(key);
        let mask = self.slots.len() - 1;
        let mut i = h as usize & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                return None;
            }
            let e = s - 1;
            if self.hashes[e as usize] == h && self.key(e) == key {
                return Some(e);
            }
            i = (i + 1) & mask;
        }
    }

    /// Counts one observation of `key`: a repeat bumps the count with zero
    /// allocations; a first observation interns the key and `exemplar`.
    /// Returns the entry id.
    #[inline]
    pub fn observe(&mut self, key: &[u32], exemplar: &[f64]) -> u32 {
        self.add(key, 1, exemplar)
    }

    /// Adds `count` observations of `key` (the merge primitive). The
    /// `exemplar` is stored only when the key is new.
    pub fn add(&mut self, key: &[u32], count: u64, exemplar: &[f64]) -> u32 {
        debug_assert_eq!(key.len(), self.stride);
        debug_assert_eq!(exemplar.len(), self.dim);
        let h = hash_key(key);
        let mask = self.slots.len() - 1;
        let mut i = h as usize & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                return self.insert_at(i, h, key, count, exemplar);
            }
            let e = s - 1;
            if self.hashes[e as usize] == h && self.key(e) == key {
                self.counts[e as usize] += count;
                return e;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert_at(&mut self, slot: usize, h: u64, key: &[u32], count: u64, exemplar: &[f64]) -> u32 {
        let e = self.counts.len() as u32;
        self.keys.extend_from_slice(key);
        self.exemplars.extend_from_slice(exemplar);
        self.counts.push(count);
        self.hashes.push(h);
        self.slots[slot] = e + 1;
        // Grow before the next insert would push load past ¾.
        if (self.counts.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        e
    }

    /// Serializes the count table for durable storage: the key and
    /// exemplar arenas plus the counts, in entry (first-observation)
    /// order. The hash cache and slot table are *not* stored — they are a
    /// deterministic function of the keys and are rebuilt on load, so a
    /// snapshot cannot smuggle in an inconsistent index.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        use srank_sample::persist::{f64_slice_value, obj, u32_slice_value};
        obj([
            ("stride", Value::Number(self.stride as f64)),
            ("dim", Value::Number(self.dim as f64)),
            ("keys", u32_slice_value(&self.keys)),
            (
                "counts",
                Value::Array(
                    self.counts
                        .iter()
                        .map(|&c| Value::Number(c as f64))
                        .collect(),
                ),
            ),
            ("exemplars", f64_slice_value(&self.exemplars)),
        ])
    }

    /// Rebuilds a table serialized by [`to_value`](Self::to_value) by
    /// replaying `add` in entry order — entry ids, counts, and exemplars
    /// come back identical; hashes and slots are recomputed.
    pub fn from_value(v: &serde_json::Value) -> srank_sample::persist::PersistResult<Self> {
        use srank_sample::persist::{
            f64_vec_field, u32_vec_field, u64_vec_field, usize_field, PersistError,
        };
        let stride = usize_field(v, "stride")?;
        let dim = usize_field(v, "dim")?;
        let keys = u32_vec_field(v, "keys")?;
        let counts = u64_vec_field(v, "counts")?;
        let exemplars = f64_vec_field(v, "exemplars")?;
        let n = counts.len();
        if keys.len() != n * stride || exemplars.len() != n * dim {
            return Err(PersistError::new(format!(
                "interner arenas disagree: {n} entries, {} keys (stride {stride}), \
                 {} exemplars (dim {dim})",
                keys.len(),
                exemplars.len()
            )));
        }
        let mut table = Self::new(stride, dim);
        for e in 0..n {
            let key = &keys[e * stride..(e + 1) * stride];
            let exemplar = &exemplars[e * dim..(e + 1) * dim];
            let id = table.add(key, counts[e], exemplar);
            if id as usize != e {
                return Err(PersistError::new(format!(
                    "duplicate interned key at entry {e}"
                )));
            }
        }
        Ok(table)
    }

    /// Doubles the slot table, re-seating entries from their cached hashes
    /// (key bytes are never re-read).
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![0u32; new_len];
        for (e, &h) in self.hashes.iter().enumerate() {
            let mut i = h as usize & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = e as u32 + 1;
        }
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn observe_counts_and_interns_once() {
        let mut t = KeyInterner::new(3, 2);
        let a = t.observe(&[1, 2, 3], &[0.5, 0.5]);
        let b = t.observe(&[1, 2, 3], &[0.9, 0.1]); // repeat: exemplar kept
        let c = t.observe(&[3, 2, 1], &[0.1, 0.9]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.count(a), 2);
        assert_eq!(t.count(c), 1);
        assert_eq!(t.key(a), &[1, 2, 3]);
        assert_eq!(t.exemplar(a), &[0.5, 0.5], "first observation wins");
        assert_eq!(t.lookup(&[3, 2, 1]), Some(c));
        assert_eq!(t.lookup(&[9, 9, 9]), None);
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut t = KeyInterner::new(2, 1);
        let mut reference: HashMap<Vec<u32>, u64> = HashMap::new();
        let mut state = 7u64;
        for i in 0..10_000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = [(state >> 40) as u32 % 97, i % 53];
            t.observe(&key, &[i as f64]);
            *reference.entry(key.to_vec()).or_insert(0) += 1;
        }
        assert_eq!(t.len(), reference.len());
        for (e, key, count, _) in t.iter() {
            assert_eq!(reference[key], count, "entry {e}");
            assert_eq!(t.lookup(key), Some(e));
        }
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut t = KeyInterner::new(1, 1);
        for v in [5u32, 3, 9, 3, 5, 1] {
            t.observe(&[v], &[f64::from(v)]);
        }
        let keys: Vec<u32> = t.iter().map(|(_, k, _, _)| k[0]).collect();
        assert_eq!(keys, vec![5, 3, 9, 1]);
        let counts: Vec<u64> = t.iter().map(|(_, _, c, _)| c).collect();
        assert_eq!(counts, vec![2, 2, 1, 1]);
    }

    #[test]
    fn add_merges_counts() {
        let mut a = KeyInterner::new(2, 1);
        a.observe(&[1, 2], &[0.1]);
        a.observe(&[1, 2], &[0.2]);
        let mut b = KeyInterner::new(2, 1);
        b.observe(&[1, 2], &[0.3]);
        b.observe(&[4, 5], &[0.4]);
        for (_, key, count, ex) in b.iter() {
            a.add(key, count, ex);
        }
        assert_eq!(a.len(), 2);
        assert_eq!(a.count(a.lookup(&[1, 2]).unwrap()), 3);
        assert_eq!(a.exemplar(a.lookup(&[1, 2]).unwrap()), &[0.1]);
        assert_eq!(a.count(a.lookup(&[4, 5]).unwrap()), 1);
        assert_eq!(a.exemplar(a.lookup(&[4, 5]).unwrap()), &[0.4]);
    }

    #[test]
    fn empty_stride_is_a_single_bucket() {
        let mut t = KeyInterner::new(0, 1);
        let a = t.observe(&[], &[1.0]);
        let b = t.observe(&[], &[2.0]);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.count(a), 2);
    }

    #[test]
    fn hash_is_deterministic_and_length_sensitive() {
        assert_eq!(hash_key(&[1, 2, 3]), hash_key(&[1, 2, 3]));
        assert_ne!(hash_key(&[1, 2, 3]), hash_key(&[1, 2]));
        assert_ne!(hash_key(&[0, 0]), hash_key(&[0, 0, 0]));
    }
}
