//! Lazy arrangement construction — `GET-NEXTmd`, Algorithm 6 (§4.2 + §5.4).
//!
//! The arrangement of the `O(n²)` ordering-exchange hyperplanes inside `U*`
//! can hold `O(n^{2d})` regions, so building it eagerly just to report a
//! few stable rankings is wasteful. `GET-NEXTmd` instead keeps a max-heap
//! of partially-refined regions ordered by (estimated) stability and only
//! ever splits the currently largest one. A region whose pending
//! hyperplane list is exhausted is fully refined — by Theorem 1 it
//! corresponds to exactly one ranking — and is returned.
//!
//! `passThrough` and the stability estimates both ride on the §5.4 sample
//! partition: each region owns a contiguous range `[sb, se)` of the shared
//! sample buffer, a split is one in-place quick-sort partition of that
//! range, stability is `(se − sb)/|S|`, and a representative function is
//! the centroid of the owned samples.

use crate::dataset::Dataset;
use crate::error::{Result, StableRankError};
use crate::ranking::Ranking;
use crate::xhps::ordering_exchange_hyperplanes;
use rand::Rng;
use srank_geom::hyperplane::{HalfSpace, OrderingExchange, Side};
use srank_geom::lp::{cone_interior_point, hyperplane_crosses_cone};
use srank_geom::region::ConeRegion;
use srank_sample::partition::PartitionedSamples;
use srank_sample::roi::RegionOfInterest;
use srank_sample::store::SampleBuffer;
use std::collections::BinaryHeap;

/// How `GET-NEXTmd` decides whether a hyperplane passes through a region
/// (§4.2 offers both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassThroughMode {
    /// §5.4: a hyperplane crosses a region iff the region's sample range
    /// has points on both sides. Fast, but thin regions below the sampling
    /// resolution are never split (their mass is attributed to a sibling).
    SamplePartition,
    /// The exact test: a linear program per candidate (two feasibility
    /// checks). Discovers *every* region of the arrangement, including
    /// zero-sample ones (emitted with stability 0 and an LP-derived
    /// representative). Only available for regions of interest expressible
    /// as linear constraints (the full orthant or a constraint set — not a
    /// cone, whose boundary is quadratic).
    ExactLp,
}

/// A stable ranking returned by the arrangement enumerator.
#[derive(Clone, Debug)]
pub struct StableRankingMd {
    pub ranking: Ranking,
    /// Estimated `vol(region)/vol(U*)`.
    pub stability: f64,
    /// A scoring function inside the region (the sample centroid).
    pub representative: Vec<f64>,
    /// The region's half-space description accumulated during splits (the
    /// hyperplanes that actually separated it from its siblings).
    pub region: ConeRegion,
}

/// The Figure-2 `Region` record: half-spaces, pending-hyperplane cursor,
/// and the owned sample range `[sb, se)`.
#[derive(Clone, Debug)]
struct PendingRegion {
    cone: ConeRegion,
    pending: usize,
    sb: usize,
    se: usize,
}

impl PendingRegion {
    fn count(&self) -> usize {
        self.se - self.sb
    }
}

/// Max-heap entry ordered by sample count (∝ stability), tie-broken by
/// range start for determinism.
#[derive(Clone)]
struct HeapEntry {
    count: usize,
    seq: usize,
    region: PendingRegion,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.count.cmp(&other.count).then(other.seq.cmp(&self.seq))
    }
}

/// An owned, `Send + 'static` snapshot of an [`MdEnumerator`]'s progress,
/// detached from the dataset borrow — the arrangement refinement so far
/// (hyperplanes, partitioned samples, pending-region heap).
///
/// Detach with [`MdEnumerator::into_state`], reattach with
/// [`MdEnumerator::from_state`]; both are O(1) moves, so a long-lived
/// session (e.g. in `srank-service`) pays nothing to persist between
/// `get_next` calls.
#[derive(Clone)]
pub struct MdState {
    n_items: usize,
    hyperplanes: Vec<OrderingExchange>,
    samples: PartitionedSamples,
    heap: Vec<HeapEntry>,
    seq: usize,
    mode: PassThroughMode,
    roi_halfspaces: Vec<HalfSpace>,
}

impl MdState {
    /// Number of partially-refined regions still pending.
    pub fn pending_regions(&self) -> usize {
        self.heap.len()
    }

    /// Serializes the refinement state for durable storage: hyperplanes,
    /// the partitioned sample buffer (its row order *is* the partition
    /// structure), and the pending-region heap in its internal array
    /// order — that array is already a valid heap, so rebuilding it on
    /// load moves nothing and a restored session splits regions in the
    /// identical order.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        use srank_sample::persist::{f64_slice_value, obj};
        let halfspaces = |hs: &[HalfSpace]| {
            Value::Array(hs.iter().map(|h| f64_slice_value(h.coeffs())).collect())
        };
        let heap: Vec<Value> = self
            .heap
            .iter()
            .map(|e| {
                obj([
                    ("count", Value::Number(e.count as f64)),
                    ("seq", Value::Number(e.seq as f64)),
                    ("cone", halfspaces(e.region.cone.halfspaces())),
                    ("pending", Value::Number(e.region.pending as f64)),
                    ("sb", Value::Number(e.region.sb as f64)),
                    ("se", Value::Number(e.region.se as f64)),
                ])
            })
            .collect();
        let mode = match self.mode {
            PassThroughMode::SamplePartition => "sample-partition",
            PassThroughMode::ExactLp => "exact-lp",
        };
        obj([
            ("n_items", Value::Number(self.n_items as f64)),
            (
                "hyperplanes",
                Value::Array(
                    self.hyperplanes
                        .iter()
                        .map(|h| f64_slice_value(h.coeffs()))
                        .collect(),
                ),
            ),
            ("samples", self.samples.to_value()),
            ("heap", Value::Array(heap)),
            ("seq", Value::Number(self.seq as f64)),
            ("mode", Value::String(mode.into())),
            ("roi_halfspaces", halfspaces(&self.roi_halfspaces)),
        ])
    }

    /// Rebuilds a state serialized by [`to_value`](Self::to_value).
    pub fn from_value(v: &serde_json::Value) -> srank_sample::persist::PersistResult<Self> {
        use srank_sample::persist::{
            array_field, f64_vec_value, field, str_field, usize_field, PersistError,
        };
        let n_items = usize_field(v, "n_items")?;
        let samples = PartitionedSamples::from_value(field(v, "samples")?)?;
        let dim = samples.dim();
        let coeff_rows = |v: &serde_json::Value,
                          key: &str|
         -> srank_sample::persist::PersistResult<Vec<Vec<f64>>> {
            array_field(v, key)?
                .iter()
                .map(|h| {
                    let coeffs = f64_vec_value(h, key)?;
                    if coeffs.len() != dim {
                        return Err(PersistError::new(format!(
                            "'{key}' row has {} coefficients, samples are d = {dim}",
                            coeffs.len()
                        )));
                    }
                    Ok(coeffs)
                })
                .collect()
        };
        let hyperplanes: Vec<OrderingExchange> = coeff_rows(v, "hyperplanes")?
            .into_iter()
            .map(OrderingExchange::from_coeffs)
            .collect();
        let roi_halfspaces: Vec<HalfSpace> = coeff_rows(v, "roi_halfspaces")?
            .into_iter()
            .map(HalfSpace::new)
            .collect();
        let mode = match str_field(v, "mode")? {
            "sample-partition" => PassThroughMode::SamplePartition,
            "exact-lp" => PassThroughMode::ExactLp,
            other => return Err(PersistError::new(format!("unknown mode '{other}'"))),
        };
        let heap: Vec<HeapEntry> = array_field(v, "heap")?
            .iter()
            .map(|e| {
                let sb = usize_field(e, "sb")?;
                let se = usize_field(e, "se")?;
                let pending = usize_field(e, "pending")?;
                let count = usize_field(e, "count")?;
                if sb > se || se > samples.len() || count != se - sb {
                    return Err(PersistError::new(format!(
                        "heap entry range [{sb}, {se}) (count {count}) is inconsistent \
                         with {} samples",
                        samples.len()
                    )));
                }
                if pending > hyperplanes.len() {
                    return Err(PersistError::new(format!(
                        "heap entry pending cursor {pending} beyond {} hyperplanes",
                        hyperplanes.len()
                    )));
                }
                let cone = ConeRegion::from_halfspaces(
                    dim,
                    coeff_rows(e, "cone")?
                        .into_iter()
                        .map(HalfSpace::new)
                        .collect(),
                );
                Ok(HeapEntry {
                    count,
                    seq: usize_field(e, "seq")?,
                    region: PendingRegion {
                        cone,
                        pending,
                        sb,
                        se,
                    },
                })
            })
            .collect::<srank_sample::persist::PersistResult<_>>()?;
        Ok(Self {
            n_items,
            hyperplanes,
            samples,
            heap,
            seq: usize_field(v, "seq")?,
            mode,
            roi_halfspaces,
        })
    }
}

/// The multi-dimensional `GET-NEXT` operator (Algorithm 6).
///
/// Cloning is cheap relative to construction (no re-sampling, no `×hps`
/// pass) and lets callers checkpoint the enumeration state.
#[derive(Clone)]
pub struct MdEnumerator<'a> {
    data: &'a Dataset,
    hyperplanes: Vec<OrderingExchange>,
    samples: PartitionedSamples,
    heap: BinaryHeap<HeapEntry>,
    seq: usize,
    mode: PassThroughMode,
    /// The linear constraints of `U*` itself (empty for the full orthant),
    /// joined to every region's cone in LP feasibility tests.
    roi_halfspaces: Vec<HalfSpace>,
}

impl<'a> MdEnumerator<'a> {
    /// Draws `n_samples` uniform functions from `roi` and prepares the
    /// enumerator (including the `×hps` hyperplane harvest, which is the
    /// O(n²) part).
    pub fn new<R: Rng + ?Sized>(
        data: &'a Dataset,
        roi: &RegionOfInterest,
        n_samples: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if roi.dim() != data.dim() {
            return Err(StableRankError::DimensionMismatch {
                expected: data.dim(),
                got: roi.dim(),
            });
        }
        if n_samples == 0 {
            return Err(StableRankError::EmptyRegionOfInterest);
        }
        let buffer = roi.sampler().sample_buffer(rng, n_samples);
        Self::with_samples(data, roi, buffer)
    }

    /// Builds the enumerator over a caller-provided sample buffer (e.g. to
    /// share samples across operators, as the paper's experiments do).
    pub fn with_samples(
        data: &'a Dataset,
        roi: &RegionOfInterest,
        buffer: SampleBuffer,
    ) -> Result<Self> {
        Self::with_samples_and_mode(data, roi, buffer, PassThroughMode::SamplePartition)
    }

    /// [`with_samples`](Self::with_samples) with an explicit `passThrough`
    /// strategy.
    ///
    /// # Errors
    /// [`PassThroughMode::ExactLp`] is rejected for cone regions of
    /// interest (their boundary is not linear).
    pub fn with_samples_and_mode(
        data: &'a Dataset,
        roi: &RegionOfInterest,
        buffer: SampleBuffer,
        mode: PassThroughMode,
    ) -> Result<Self> {
        if buffer.dim() != data.dim() {
            return Err(StableRankError::DimensionMismatch {
                expected: data.dim(),
                got: buffer.dim(),
            });
        }
        if buffer.is_empty() {
            return Err(StableRankError::EmptyRegionOfInterest);
        }
        let roi_halfspaces = match roi {
            RegionOfInterest::FullOrthant { .. } => Vec::new(),
            RegionOfInterest::Constraints { halfspaces, .. } => halfspaces.clone(),
            RegionOfInterest::Cone { .. } => {
                if mode == PassThroughMode::ExactLp {
                    return Err(StableRankError::InvalidWeights(
                        "ExactLp passThrough requires a linearly-constrained region of \
                         interest (full orthant or constraint set), not a cone"
                            .into(),
                    ));
                }
                Vec::new()
            }
        };
        let hyperplanes = ordering_exchange_hyperplanes(data, roi, &buffer);
        let total = buffer.len();
        let samples = PartitionedSamples::new(buffer);
        let root = PendingRegion {
            cone: ConeRegion::full(data.dim()),
            pending: 0,
            sb: 0,
            se: total,
        };
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            count: total,
            seq: 0,
            region: root,
        });
        Ok(Self {
            data,
            hyperplanes,
            samples,
            heap,
            seq: 1,
            mode,
            roi_halfspaces,
        })
    }

    /// Detaches the enumeration state from the dataset borrow (see
    /// [`MdState`]).
    pub fn into_state(self) -> MdState {
        MdState {
            n_items: self.data.len(),
            hyperplanes: self.hyperplanes,
            samples: self.samples,
            heap: self.heap.into_vec(),
            seq: self.seq,
            mode: self.mode,
            roi_halfspaces: self.roi_halfspaces,
        }
    }

    /// Reattaches a detached state to its dataset.
    ///
    /// # Errors
    /// Fails when `data` disagrees with the dataset the state was built
    /// over on dimension or item count (the cheap shape checks available —
    /// equal-shape datasets with different contents cannot be told apart).
    pub fn from_state(data: &'a Dataset, state: MdState) -> Result<Self> {
        if state.samples.dim() != data.dim() {
            return Err(StableRankError::DimensionMismatch {
                expected: state.samples.dim(),
                got: data.dim(),
            });
        }
        if state.n_items != data.len() {
            return Err(StableRankError::DimensionMismatch {
                expected: state.n_items,
                got: data.len(),
            });
        }
        Ok(Self {
            data,
            hyperplanes: state.hyperplanes,
            samples: state.samples,
            heap: state.heap.into(),
            seq: state.seq,
            mode: state.mode,
            roi_halfspaces: state.roi_halfspaces,
        })
    }

    /// The region's cone joined with the `U*` constraints — the feasibility
    /// domain for LP tests.
    fn lp_cone(&self, cone: &ConeRegion) -> ConeRegion {
        let mut joined = cone.clone();
        for h in &self.roi_halfspaces {
            joined.push(h.clone());
        }
        joined
    }

    /// Number of ordering-exchange hyperplanes intersecting `U*`.
    pub fn num_hyperplanes(&self) -> usize {
        self.hyperplanes.len()
    }

    /// Algorithm 6: the next most stable ranking, or `None` when the
    /// arrangement is exhausted (at sampling resolution).
    pub fn get_next(&mut self) -> Option<StableRankingMd> {
        while let Some(HeapEntry { mut region, .. }) = self.heap.pop() {
            let mut crossing: Option<usize> = None;
            while region.pending < self.hyperplanes.len() {
                let hp = &self.hyperplanes[region.pending];
                // Partition regardless of mode: it keeps the ownership
                // ranges canonical and yields the split index when needed.
                let split = self.samples.partition(region.sb, region.se, hp).split;
                let crosses = match self.mode {
                    PassThroughMode::SamplePartition => split > region.sb && split < region.se,
                    PassThroughMode::ExactLp => {
                        // The sampled witness is sound (both sides occupied
                        // ⇒ crossing); the LP settles the undecided cases.
                        (split > region.sb && split < region.se)
                            || hyperplane_crosses_cone(&self.lp_cone(&region.cone), hp)
                    }
                };
                if crosses {
                    crossing = Some(split);
                    break;
                }
                region.pending += 1;
            }
            let Some(split) = crossing else {
                // Fully refined: emit.
                let stability = self.samples.stability_of_range(region.sb, region.se);
                let representative = match self.samples.representative(region.sb, region.se) {
                    Some(rep) => rep,
                    // Zero-sample region (ExactLp only): take the LP's
                    // interior point.
                    None => match cone_interior_point(&self.lp_cone(&region.cone)) {
                        Some(rep) => rep,
                        None => continue, // numerically vanished; drop it
                    },
                };
                let ranking = self
                    .data
                    .rank(&representative)
                    .expect("dimensions verified at construction");
                return Some(StableRankingMd {
                    ranking,
                    stability,
                    representative,
                    region: region.cone,
                });
            };
            // Split into h⁻ and h⁺ children. Under SamplePartition both
            // sides are non-empty; under ExactLp a side may own no samples.
            let hp = &self.hyperplanes[region.pending];
            let pending = region.pending + 1;
            let minus = PendingRegion {
                cone: region.cone.with(hp.half_space(Side::Negative)),
                pending,
                sb: region.sb,
                se: split,
            };
            let plus = PendingRegion {
                cone: region.cone.with(hp.half_space(Side::Positive)),
                pending,
                sb: split,
                se: region.se,
            };
            for child in [minus, plus] {
                if self.mode == PassThroughMode::ExactLp && child.count() == 0 {
                    // Verify the empty side is genuinely feasible before
                    // keeping it — the LP said the hyperplane crosses, so
                    // at least one of the two must be; re-checking both
                    // guards against tolerance asymmetries.
                    if cone_interior_point(&self.lp_cone(&child.cone)).is_none() {
                        continue;
                    }
                }
                let count = child.count();
                self.heap.push(HeapEntry {
                    count,
                    seq: self.seq,
                    region: child,
                });
                self.seq += 1;
            }
        }
        None
    }

    /// The top-`h` most stable rankings (Problem 2, count form).
    pub fn top_h(&mut self, h: usize) -> Vec<StableRankingMd> {
        (0..h).map_while(|_| self.get_next()).collect()
    }

    /// All rankings with stability at least `s` (Problem 2, threshold
    /// form). Correct because `get_next` yields non-increasing stability.
    pub fn with_stability_at_least(&mut self, s: f64) -> Vec<StableRankingMd> {
        let mut out = Vec::new();
        while let Some(r) = self.get_next() {
            if r.stability < s {
                break;
            }
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sv2d::AngleInterval;
    use crate::sweep2d::Enumerator2D;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lcg_rows(n: usize, d: usize, mut state: u64) -> Vec<Vec<f64>> {
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
    }

    #[test]
    fn stabilities_are_non_increasing_and_sum_to_one() {
        let data = Dataset::from_rows(&lcg_rows(8, 3, 11)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = MdEnumerator::new(&data, &roi, 20_000, &mut rng).unwrap();
        let mut prev = f64::INFINITY;
        let mut total = 0.0;
        let mut count = 0;
        while let Some(r) = e.get_next() {
            assert!(r.stability <= prev + 1e-12);
            prev = r.stability;
            total += r.stability;
            count += 1;
        }
        assert!(count > 1, "several regions expected");
        assert!(
            (total - 1.0).abs() < 1e-9,
            "sampled mass must be fully assigned"
        );
    }

    #[test]
    fn returned_rankings_are_distinct() {
        let data = Dataset::from_rows(&lcg_rows(7, 3, 23)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = MdEnumerator::new(&data, &roi, 10_000, &mut rng).unwrap();
        let mut seen: Vec<Ranking> = Vec::new();
        while let Some(r) = e.get_next() {
            assert!(
                !seen.contains(&r.ranking),
                "Theorem 1: each ranking appears in exactly one region"
            );
            seen.push(r.ranking);
        }
    }

    #[test]
    fn representative_generates_the_returned_ranking() {
        let data = Dataset::from_rows(&lcg_rows(10, 4, 37)).unwrap();
        let roi = RegionOfInterest::full(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = MdEnumerator::new(&data, &roi, 5_000, &mut rng).unwrap();
        for _ in 0..5 {
            let Some(r) = e.get_next() else { break };
            assert_eq!(data.rank(&r.representative).unwrap(), r.ranking);
        }
    }

    #[test]
    fn agrees_with_exact_2d_sweep() {
        // The arrangement path and the exact sweep must find the same most
        // stable rankings with matching stabilities (up to MC error).
        let data = Dataset::figure1();
        let mut sweep = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let exact: Vec<_> = sweep.top_h(3);

        let roi = RegionOfInterest::full(2);
        let mut rng = StdRng::seed_from_u64(4);
        let mut md = MdEnumerator::new(&data, &roi, 200_000, &mut rng).unwrap();
        let sampled: Vec<_> = md.top_h(3);

        for (e, s) in exact.iter().zip(&sampled) {
            assert_eq!(e.ranking, s.ranking, "most-stable order must match");
            assert!(
                (e.stability - s.stability).abs() < 0.01,
                "exact {} vs sampled {}",
                e.stability,
                s.stability
            );
        }
    }

    #[test]
    fn narrow_cone_roi_enumerates_local_rankings() {
        let data = Dataset::from_rows(&lcg_rows(12, 3, 53)).unwrap();
        let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], std::f64::consts::PI / 50.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut e = MdEnumerator::new(&data, &roi, 10_000, &mut rng).unwrap();
        let mut rankings = Vec::new();
        while let Some(r) = e.get_next() {
            // Every representative stays inside the cone.
            assert!(roi.contains(&r.representative));
            rankings.push(r);
        }
        let total: f64 = rankings.iter().map(|r| r.stability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominance_chain_yields_single_ranking() {
        let data = Dataset::from_rows(&[
            vec![0.9, 0.8, 0.9],
            vec![0.5, 0.5, 0.5],
            vec![0.2, 0.1, 0.3],
        ])
        .unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(6);
        let mut e = MdEnumerator::new(&data, &roi, 1000, &mut rng).unwrap();
        assert_eq!(e.num_hyperplanes(), 0);
        let only = e.get_next().unwrap();
        assert_eq!(only.stability, 1.0);
        assert_eq!(only.ranking.order(), &[0, 1, 2]);
        assert!(e.get_next().is_none());
    }

    #[test]
    fn top_h_and_threshold() {
        let data = Dataset::from_rows(&lcg_rows(9, 3, 71)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut e = MdEnumerator::new(&data, &roi, 20_000, &mut rng).unwrap();
        let top = e.top_h(4);
        assert!(top.len() <= 4);

        let mut rng2 = StdRng::seed_from_u64(7);
        let mut e2 = MdEnumerator::new(&data, &roi, 20_000, &mut rng2).unwrap();
        let s = top.last().unwrap().stability;
        let batch = e2.with_stability_at_least(s);
        assert!(batch.len() >= top.len());
        assert!(batch.iter().all(|r| r.stability >= s));
    }

    #[test]
    fn detached_state_resumes_exactly_where_it_left_off() {
        let data = Dataset::from_rows(&lcg_rows(9, 3, 77)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(12);
        let buffer = roi.sampler().sample_buffer(&mut rng, 8_000);
        let mut reference = MdEnumerator::with_samples(&data, &roi, buffer.clone()).unwrap();
        let mut session = MdEnumerator::with_samples(&data, &roi, buffer).unwrap();
        loop {
            session = MdEnumerator::from_state(&data, session.into_state()).unwrap();
            match (reference.get_next(), session.get_next()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.ranking, b.ranking);
                    assert_eq!(a.stability, b.stability);
                }
                other => panic!("streams diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn from_state_rejects_dimension_mismatch() {
        let data = Dataset::from_rows(&lcg_rows(6, 3, 79)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(13);
        let state = MdEnumerator::new(&data, &roi, 500, &mut rng)
            .unwrap()
            .into_state();
        assert!(state.pending_regions() > 0);
        let other = Dataset::figure1(); // d = 2
        assert!(MdEnumerator::from_state(&other, state).is_err());
    }

    #[test]
    fn zero_samples_is_an_error() {
        let data = Dataset::figure1();
        let roi = RegionOfInterest::full(2);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(matches!(
            MdEnumerator::new(&data, &roi, 0, &mut rng),
            Err(StableRankError::EmptyRegionOfInterest)
        ));
    }

    #[test]
    fn roi_dimension_checked() {
        let data = Dataset::figure1();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(matches!(
            MdEnumerator::new(&data, &roi, 10, &mut rng),
            Err(StableRankError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn exact_lp_mode_finds_all_eleven_figure1_regions() {
        // With few samples, the sampled passThrough misses thin regions;
        // the LP mode must still enumerate all 11 rankings of Figure 1c.
        let data = Dataset::figure1();
        let roi = RegionOfInterest::full(2);
        let mut rng = StdRng::seed_from_u64(77);
        let buffer = roi.sampler().sample_buffer(&mut rng, 60);
        let mut lp = MdEnumerator::with_samples_and_mode(
            &data,
            &roi,
            buffer.clone(),
            PassThroughMode::ExactLp,
        )
        .unwrap();
        let mut lp_rankings = Vec::new();
        while let Some(r) = lp.get_next() {
            assert!(!lp_rankings.contains(&r.ranking));
            lp_rankings.push(r.ranking);
        }
        assert_eq!(lp_rankings.len(), 11, "ExactLp must find every region");

        // The sampled mode finds at most as many.
        let mut sampled = MdEnumerator::with_samples(&data, &roi, buffer).unwrap();
        let mut sampled_count = 0;
        while sampled.get_next().is_some() {
            sampled_count += 1;
        }
        assert!(sampled_count <= 11);
    }

    #[test]
    fn exact_lp_zero_sample_regions_have_valid_representatives() {
        let data = Dataset::from_rows(&lcg_rows(7, 3, 91)).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(78);
        let buffer = roi.sampler().sample_buffer(&mut rng, 40);
        let mut lp =
            MdEnumerator::with_samples_and_mode(&data, &roi, buffer, PassThroughMode::ExactLp)
                .unwrap();
        let mut total = 0.0;
        let mut zero_regions = 0;
        let mut seen = Vec::new();
        while let Some(r) = lp.get_next() {
            total += r.stability;
            if r.stability == 0.0 {
                zero_regions += 1;
            }
            // The representative must generate the returned ranking and
            // lie inside the reported region.
            assert_eq!(data.rank(&r.representative).unwrap(), r.ranking);
            assert!(r.region.contains_with_tol(&r.representative, 1e-12));
            assert!(!seen.contains(&r.ranking), "duplicate ranking emitted");
            seen.push(r.ranking);
        }
        assert!((total - 1.0).abs() < 1e-9, "sampled mass still sums to one");
        assert!(
            zero_regions > 0,
            "40 samples cannot cover every region of 7 items in 3-D"
        );
    }

    #[test]
    fn exact_lp_agrees_with_exact_2d_region_count() {
        let data = Dataset::from_rows(&lcg_rows(8, 2, 13)).unwrap();
        let exact_2d = crate::sweep2d::Enumerator2D::new(&data, crate::sv2d::AngleInterval::full())
            .unwrap()
            .num_regions();
        let roi = RegionOfInterest::full(2);
        let mut rng = StdRng::seed_from_u64(79);
        let buffer = roi.sampler().sample_buffer(&mut rng, 100);
        let mut lp =
            MdEnumerator::with_samples_and_mode(&data, &roi, buffer, PassThroughMode::ExactLp)
                .unwrap();
        let mut count = 0;
        while lp.get_next().is_some() {
            count += 1;
        }
        assert_eq!(count, exact_2d, "LP arrangement vs exact sweep");
    }

    #[test]
    fn exact_lp_rejected_for_cone_roi() {
        let data = Dataset::figure1();
        let roi = RegionOfInterest::cone(&[1.0, 1.0], 0.1);
        let mut rng = StdRng::seed_from_u64(80);
        let buffer = roi.sampler().sample_buffer(&mut rng, 10);
        assert!(
            MdEnumerator::with_samples_and_mode(&data, &roi, buffer, PassThroughMode::ExactLp)
                .is_err()
        );
    }

    #[test]
    fn exact_lp_respects_constraint_roi() {
        use srank_geom::hyperplane::HalfSpace;
        // U* = {w1 ≥ w2 ≥ w3}: only rankings feasible there may appear.
        let data = Dataset::from_rows(&lcg_rows(6, 3, 41)).unwrap();
        let roi = RegionOfInterest::constraints(
            3,
            vec![
                HalfSpace::new(vec![1.0, -1.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0, -1.0]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(81);
        let buffer = roi.sampler().sample_buffer(&mut rng, 200);
        let mut lp =
            MdEnumerator::with_samples_and_mode(&data, &roi, buffer, PassThroughMode::ExactLp)
                .unwrap();
        let mut total = 0.0;
        while let Some(r) = lp.get_next() {
            total += r.stability;
            assert!(roi.contains(&r.representative), "representative escaped U*");
        }
        assert!((total - 1.0).abs() < 1e-9);
    }
}
