//! Exact top-k stability in two dimensions.
//!
//! §4.5.1 handles top-k only through the randomized operator because the
//! arrangement cannot attribute regions to shared top-k results. In 2-D,
//! however, the regions are a *sorted sequence of intervals*, so the exact
//! stability of every top-k set (or ranked top-k prefix) is simply the sum
//! of the spans of the regions that produce it. This module computes that —
//! both as an exact answer in its own right and as the ground truth the
//! randomized top-k tests calibrate against.

use crate::dataset::Dataset;
use crate::error::Result;
use crate::ranking::{TopKRanked, TopKSet};
use crate::sv2d::AngleInterval;
use crate::sweep2d::Enumerator2D;
use srank_geom::angle2d::weight_from_angle_2d;
use std::collections::HashMap;

/// Exact stabilities of all feasible top-k *sets* in `interval`, sorted by
/// descending stability (ties by set order, for determinism).
pub fn top_k_set_stabilities_2d(
    data: &Dataset,
    interval: AngleInterval,
    k: usize,
) -> Result<Vec<(TopKSet, f64)>> {
    let e = Enumerator2D::new(data, interval)?;
    let mut mass: HashMap<TopKSet, f64> = HashMap::new();
    for region in e.regions() {
        let ranking = data.rank(&weight_from_angle_2d(region.midpoint()))?;
        *mass.entry(ranking.top_k_set(k)).or_default() += region.stability;
    }
    let mut out: Vec<(TopKSet, f64)> = mass.into_iter().collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then_with(|| a.0.items().cmp(b.0.items()))
    });
    Ok(out)
}

/// Exact stabilities of all feasible *ranked* top-k prefixes in `interval`,
/// sorted by descending stability.
pub fn top_k_ranked_stabilities_2d(
    data: &Dataset,
    interval: AngleInterval,
    k: usize,
) -> Result<Vec<(TopKRanked, f64)>> {
    let e = Enumerator2D::new(data, interval)?;
    let mut mass: HashMap<TopKRanked, f64> = HashMap::new();
    for region in e.regions() {
        let ranking = data.rank(&weight_from_angle_2d(region.midpoint()))?;
        *mass.entry(ranking.top_k_ranked(k)).or_default() += region.stability;
    }
    let mut out: Vec<(TopKRanked, f64)> = mass.into_iter().collect();
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then_with(|| a.0.items().cmp(b.0.items()))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomized::{RandomizedEnumerator, RankingScope};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srank_sample::roi::RegionOfInterest;

    fn toy() -> Dataset {
        Dataset::from_rows(&[
            vec![1.0, 0.0],
            vec![0.99, 0.99],
            vec![0.98, 0.98],
            vec![0.97, 0.97],
            vec![0.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn toy_example_most_stable_top3_set() {
        // §2.2.5: the most stable top-3 is {t2, t3, t4}, not a skyline
        // subset — now exactly, not by sampling.
        let sets = top_k_set_stabilities_2d(&toy(), AngleInterval::full(), 3).unwrap();
        assert_eq!(sets[0].0.items(), &[1, 2, 3]);
        assert!(sets[0].1 > 0.5);
    }

    #[test]
    fn set_masses_partition_unity() {
        let data = Dataset::figure1();
        for k in 1..=5 {
            let sets = top_k_set_stabilities_2d(&data, AngleInterval::full(), k).unwrap();
            let total: f64 = sets.iter().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "k={k}: total {total}");
            let ranked = top_k_ranked_stabilities_2d(&data, AngleInterval::full(), k).unwrap();
            let total_r: f64 = ranked.iter().map(|(_, s)| s).sum();
            assert!(
                (total_r - 1.0).abs() < 1e-9,
                "k={k}: ranked total {total_r}"
            );
        }
    }

    #[test]
    fn sets_aggregate_ranked_prefixes() {
        // Every set's mass equals the sum of the masses of the ranked
        // prefixes over the same items.
        let data = Dataset::figure1();
        let k = 3;
        let sets = top_k_set_stabilities_2d(&data, AngleInterval::full(), k).unwrap();
        let ranked = top_k_ranked_stabilities_2d(&data, AngleInterval::full(), k).unwrap();
        for (set, mass) in &sets {
            let sum: f64 = ranked
                .iter()
                .filter(|(prefix, _)| {
                    let mut sorted = prefix.items().to_vec();
                    sorted.sort_unstable();
                    sorted == set.items()
                })
                .map(|(_, m)| m)
                .sum();
            assert!((sum - mass).abs() < 1e-9, "set {set:?}: {sum} vs {mass}");
        }
        // And the max set mass dominates the max ranked mass.
        assert!(sets[0].1 >= ranked[0].1 - 1e-12);
    }

    #[test]
    fn k_equal_n_reduces_to_full_rankings() {
        let data = Dataset::figure1();
        let ranked = top_k_ranked_stabilities_2d(&data, AngleInterval::full(), 5).unwrap();
        // 11 regions, 11 distinct full rankings.
        assert_eq!(ranked.len(), 11);
    }

    #[test]
    fn k_one_is_the_most_preferred_item_distribution() {
        // For k = 1, mass of item i = span of angles where it tops the
        // list; on the toy data t2 tops almost everywhere.
        let sets = top_k_set_stabilities_2d(&toy(), AngleInterval::full(), 1).unwrap();
        assert_eq!(sets[0].0.items(), &[1]);
        assert!(sets[0].1 > 0.9, "t2 dominates the quadrant: {}", sets[0].1);
    }

    #[test]
    fn randomized_estimates_converge_to_exact_values() {
        // The strongest calibration test for the §4.5.1 operator: the
        // Monte-Carlo top-k set stabilities must match the exact 2-D ones
        // within confidence error.
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let rows: Vec<Vec<f64>> = (0..25).map(|_| vec![next(), next()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let k = 5;
        let exact = top_k_set_stabilities_2d(&data, AngleInterval::full(), k).unwrap();
        let exact_map: HashMap<Vec<u32>, f64> = exact
            .iter()
            .map(|(s, m)| (s.items().to_vec(), *m))
            .collect();

        let roi = RegionOfInterest::full(2);
        let mut op =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(k), 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        op.sample_n(&mut rng, 40_000);
        let mut checked = 0;
        while let Some(d) = op.get_next_budget(&mut rng, 0) {
            if let Some(&truth) = exact_map.get(&d.items) {
                assert!(
                    (d.stability - truth).abs() <= (4.0 * d.confidence_error).max(0.01),
                    "set {:?}: estimate {} vs exact {}",
                    d.items,
                    d.stability,
                    truth
                );
                checked += 1;
            }
        }
        assert!(checked >= 3, "need several sets to compare, got {checked}");
    }

    #[test]
    fn interval_restriction_renormalizes() {
        let data = Dataset::figure1();
        let narrow = AngleInterval::new(0.6, 1.0).unwrap();
        let sets = top_k_set_stabilities_2d(&data, narrow, 2).unwrap();
        let total: f64 = sets.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
