//! Linear scoring functions (Definition 1).

use crate::error::{Result, StableRankError};
use srank_geom::polar::{to_angles, to_cartesian};
use srank_geom::vector::{cosine_similarity, normalized};

/// A linear scoring function `f_w(t) = Σ_j w_j·t[j]` with non-negative
/// weights.
///
/// Only the *direction* of `w` matters for the induced ranking; the type
/// keeps the user's raw weights but exposes the unit vector for geometric
/// use.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoringFunction {
    weights: Vec<f64>,
    unit: Vec<f64>,
}

impl ScoringFunction {
    /// Builds a scoring function from raw weights.
    ///
    /// # Errors
    /// Rejects empty, non-finite, negative, or all-zero weight vectors.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StableRankError::InvalidWeights(
                "empty weight vector".into(),
            ));
        }
        for &w in weights {
            if !w.is_finite() {
                return Err(StableRankError::InvalidWeights(format!(
                    "non-finite weight {w}"
                )));
            }
            if w < 0.0 {
                return Err(StableRankError::InvalidWeights(format!(
                    "negative weight {w}; the paper's w ≥ 0 convention applies"
                )));
            }
        }
        let unit = normalized(weights)
            .ok_or_else(|| StableRankError::InvalidWeights("all-zero weight vector".into()))?;
        Ok(Self {
            weights: weights.to_vec(),
            unit,
        })
    }

    /// The scoring function at the given polar angles (§2.1.2's ray
    /// representation); all angles in `[0, π/2]` give non-negative weights.
    pub fn from_angles(angles: &[f64]) -> Result<Self> {
        Self::new(&to_cartesian(1.0, angles))
    }

    /// Raw weights as provided.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The unit-norm direction of the weight vector.
    pub fn unit(&self) -> &[f64] {
        &self.unit
    }

    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The `d − 1` polar angles identifying this function's ray.
    pub fn angles(&self) -> Vec<f64> {
        to_angles(&self.unit).expect("unit vector is non-zero").1
    }

    /// Cosine similarity with another function (1 = same ray).
    pub fn cosine_similarity(&self, other: &ScoringFunction) -> f64 {
        cosine_similarity(&self.unit, &other.unit).expect("unit vectors are non-zero")
    }

    /// Applies the function to an item.
    pub fn score(&self, item: &[f64]) -> f64 {
        srank_geom::vector::dot(&self.weights, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn construction_validation() {
        assert!(ScoringFunction::new(&[]).is_err());
        assert!(ScoringFunction::new(&[0.0, 0.0]).is_err());
        assert!(ScoringFunction::new(&[1.0, -0.1]).is_err());
        assert!(ScoringFunction::new(&[1.0, f64::INFINITY]).is_err());
        assert!(ScoringFunction::new(&[1.0, 0.0]).is_ok());
    }

    #[test]
    fn unit_direction() {
        let f = ScoringFunction::new(&[3.0, 4.0]).unwrap();
        assert!((f.unit()[0] - 0.6).abs() < 1e-12);
        assert!((f.unit()[1] - 0.8).abs() < 1e-12);
        assert_eq!(f.weights(), &[3.0, 4.0]);
    }

    #[test]
    fn paper_diagonal_function_angle() {
        let f = ScoringFunction::new(&[1.0, 1.0]).unwrap();
        let angles = f.angles();
        assert_eq!(angles.len(), 1);
        assert!((angles[0] - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn from_angles_roundtrip() {
        let f = ScoringFunction::from_angles(&[0.3, 0.9, 1.2]).unwrap();
        let back = f.angles();
        assert!(back
            .iter()
            .zip(&[0.3, 0.9, 1.2])
            .all(|(a, b)| (a - b).abs() < 1e-10));
    }

    #[test]
    fn cosine_similarity_examples() {
        let a = ScoringFunction::new(&[1.0, 1.0]).unwrap();
        let b = ScoringFunction::new(&[2.0, 2.0]).unwrap();
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-12);
        let c = ScoringFunction::new(&[1.0, 0.0]).unwrap();
        assert!((a.cosine_similarity(&c) - FRAC_PI_4.cos()).abs() < 1e-12);
    }

    #[test]
    fn scoring_matches_figure1() {
        let f = ScoringFunction::new(&[1.0, 1.0]).unwrap();
        assert!((f.score(&[0.83, 0.65]) - 1.48).abs() < 1e-12);
    }

    /// The paper's §2.2.2 example: π/10 angle distance corresponds to
    /// 95.1% cosine similarity.
    #[test]
    fn angle_distance_cosine_similarity_equivalence() {
        let reference = ScoringFunction::new(&[1.0, 1.0]).unwrap();
        let rotated =
            ScoringFunction::from_angles(&[FRAC_PI_4 + std::f64::consts::PI / 10.0]).unwrap();
        let cs = reference.cosine_similarity(&rotated);
        assert!((cs - 0.951).abs() < 0.001, "cos(π/10) = {cs}");
    }
}
