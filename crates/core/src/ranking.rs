//! Rankings and their top-k projections (§2.1.1, §2.2.5).

use crate::error::{Result, StableRankError};

/// An item whose position differs between two rankings — the unit of a
/// ranking diff (e.g. "Cornell moves from 11 to 10").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItemMove {
    pub item: u32,
    /// 0-based rank in the reference ranking.
    pub from: usize,
    /// 0-based rank in the other ranking.
    pub to: usize,
}

impl ItemMove {
    /// Positive when the item improved (moved toward rank 0).
    pub fn improvement(&self) -> isize {
        self.from as isize - self.to as isize
    }
}

/// A total ranking of the items of a dataset: `order[0]` is the top item's
/// index, `order[n−1]` the bottom's.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Ranking {
    order: Vec<u32>,
}

impl Ranking {
    /// Builds a ranking, validating that it is a permutation of `0..n`.
    pub fn new(order: Vec<u32>) -> Result<Self> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &i in &order {
            let i = i as usize;
            if i >= n {
                return Err(StableRankError::InvalidRanking(format!(
                    "item index {i} out of range for {n} items"
                )));
            }
            if seen[i] {
                return Err(StableRankError::InvalidRanking(format!(
                    "item {i} appears twice"
                )));
            }
            seen[i] = true;
        }
        Ok(Self { order })
    }

    /// Internal constructor for orders already known to be permutations.
    pub(crate) fn from_order_unchecked(order: Vec<u32>) -> Self {
        Self { order }
    }

    /// Item indices from best to worst.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of ranked items.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The item at the given rank (0-based: rank 0 is the best item).
    pub fn item_at(&self, rank: usize) -> u32 {
        self.order[rank]
    }

    /// The 0-based rank of an item, or `None` if the index is out of range.
    pub fn rank_of(&self, item: u32) -> Option<usize> {
        self.order.iter().position(|&i| i == item)
    }

    /// The ranked top-k prefix.
    pub fn top_k_ranked(&self, k: usize) -> TopKRanked {
        TopKRanked {
            items: self.order[..k.min(self.order.len())].to_vec(),
        }
    }

    /// The top-k *set*: the same items regardless of their internal order.
    pub fn top_k_set(&self, k: usize) -> TopKSet {
        let mut items = self.order[..k.min(self.order.len())].to_vec();
        items.sort_unstable();
        TopKSet { items }
    }

    /// All items whose rank changed between `self` (the reference) and
    /// `other`, sorted by the magnitude of the move (largest first), ties
    /// by item index. The consumer-facing "what changed" report of the
    /// paper's examples (Cornell ↔ Toronto, Tunisia ↔ Mexico).
    pub fn diff(&self, other: &Ranking) -> Result<Vec<ItemMove>> {
        if self.len() != other.len() {
            return Err(StableRankError::InvalidRanking(
                "rankings of different lengths are incomparable".into(),
            ));
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (p, &item) in other.order.iter().enumerate() {
            pos[item as usize] = p;
        }
        let mut moves: Vec<ItemMove> = self
            .order
            .iter()
            .enumerate()
            .filter_map(|(from, &item)| {
                let to = pos[item as usize];
                if to == usize::MAX {
                    // `other` is a permutation of the same length, so every
                    // item of `self` appears — unless the permutations are
                    // over different item sets, which `new` prevents.
                    return None;
                }
                (from != to).then_some(ItemMove { item, from, to })
            })
            .collect();
        moves.sort_by(|a, b| {
            b.improvement()
                .abs()
                .cmp(&a.improvement().abs())
                .then(a.item.cmp(&b.item))
        });
        Ok(moves)
    }

    /// Number of adjacent transpositions separating two rankings of the
    /// same items — a convenient distance for reporting how far a stable
    /// ranking drifted from a reference (Kendall-tau distance).
    pub fn kendall_tau_distance(&self, other: &Ranking) -> Result<usize> {
        if self.len() != other.len() {
            return Err(StableRankError::InvalidRanking(
                "rankings of different lengths are incomparable".into(),
            ));
        }
        let n = self.len();
        // Positions of each item in `other`.
        let mut pos = vec![0u32; n];
        for (p, &item) in other.order.iter().enumerate() {
            pos[item as usize] = p as u32;
        }
        // Count inversions of the mapped sequence via mergesort.
        let mapped: Vec<u32> = self.order.iter().map(|&i| pos[i as usize]).collect();
        Ok(count_inversions(mapped))
    }
}

/// The ranked top-k model: both membership *and* internal order matter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TopKRanked {
    items: Vec<u32>,
}

impl TopKRanked {
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    pub fn k(&self) -> usize {
        self.items.len()
    }
}

/// The top-k set model: only membership matters (stored sorted).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TopKSet {
    items: Vec<u32>,
}

impl TopKSet {
    /// Items in ascending index order.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    pub fn k(&self) -> usize {
        self.items.len()
    }

    pub fn contains(&self, item: u32) -> bool {
        self.items.binary_search(&item).is_ok()
    }
}

fn count_inversions(mut a: Vec<u32>) -> usize {
    let n = a.len();
    let mut buf = vec![0u32; n];
    fn sort(a: &mut [u32], buf: &mut [u32]) -> usize {
        let n = a.len();
        if n <= 1 {
            return 0;
        }
        let mid = n / 2;
        let mut inv = {
            let (lo, hi) = a.split_at_mut(mid);
            sort(lo, &mut buf[..mid]) + sort(hi, &mut buf[mid..])
        };
        let (mut i, mut j) = (0, mid);
        for slot in buf[..n].iter_mut() {
            if i < mid && (j >= n || a[i] <= a[j]) {
                *slot = a[i];
                i += 1;
            } else {
                inv += mid - i;
                *slot = a[j];
                j += 1;
            }
        }
        a.copy_from_slice(&buf[..n]);
        inv
    }
    sort(&mut a, &mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_permutations() {
        assert!(Ranking::new(vec![0, 1, 2]).is_ok());
        assert!(Ranking::new(vec![0, 0, 2]).is_err());
        assert!(Ranking::new(vec![0, 3]).is_err());
        assert!(Ranking::new(vec![]).is_ok());
    }

    #[test]
    fn rank_lookup() {
        let r = Ranking::new(vec![2, 0, 1]).unwrap();
        assert_eq!(r.item_at(0), 2);
        assert_eq!(r.rank_of(0), Some(1));
        assert_eq!(r.rank_of(9), None);
    }

    #[test]
    fn top_k_ranked_vs_set_semantics() {
        let a = Ranking::new(vec![2, 0, 1, 3]).unwrap();
        let b = Ranking::new(vec![0, 2, 1, 3]).unwrap();
        // Same top-2 set {0, 2}, different ranked top-2.
        assert_eq!(a.top_k_set(2), b.top_k_set(2));
        assert_ne!(a.top_k_ranked(2), b.top_k_ranked(2));
        assert_eq!(a.top_k_set(2).items(), &[0, 2]);
        assert!(a.top_k_set(2).contains(2));
        assert!(!a.top_k_set(2).contains(1));
    }

    #[test]
    fn top_k_clamps() {
        let r = Ranking::new(vec![1, 0]).unwrap();
        assert_eq!(r.top_k_ranked(10).k(), 2);
        assert_eq!(r.top_k_set(10).k(), 2);
    }

    #[test]
    fn kendall_tau_basics() {
        let a = Ranking::new(vec![0, 1, 2, 3]).unwrap();
        assert_eq!(a.kendall_tau_distance(&a).unwrap(), 0);
        let one_swap = Ranking::new(vec![1, 0, 2, 3]).unwrap();
        assert_eq!(a.kendall_tau_distance(&one_swap).unwrap(), 1);
        let reversed = Ranking::new(vec![3, 2, 1, 0]).unwrap();
        assert_eq!(a.kendall_tau_distance(&reversed).unwrap(), 6);
    }

    #[test]
    fn kendall_tau_is_symmetric() {
        let a = Ranking::new(vec![2, 0, 3, 1, 4]).unwrap();
        let b = Ranking::new(vec![4, 2, 1, 0, 3]).unwrap();
        assert_eq!(
            a.kendall_tau_distance(&b).unwrap(),
            b.kendall_tau_distance(&a).unwrap()
        );
    }

    #[test]
    fn kendall_tau_rejects_length_mismatch() {
        let a = Ranking::new(vec![0, 1]).unwrap();
        let b = Ranking::new(vec![0, 1, 2]).unwrap();
        assert!(a.kendall_tau_distance(&b).is_err());
    }

    #[test]
    fn diff_reports_moves_largest_first() {
        let a = Ranking::new(vec![0, 1, 2, 3, 4]).unwrap();
        let b = Ranking::new(vec![4, 1, 2, 3, 0]).unwrap();
        let moves = a.diff(&b).unwrap();
        assert_eq!(moves.len(), 2);
        assert_eq!(
            moves[0],
            ItemMove {
                item: 0,
                from: 0,
                to: 4
            }
        );
        assert_eq!(
            moves[1],
            ItemMove {
                item: 4,
                from: 4,
                to: 0
            }
        );
        assert_eq!(moves[0].improvement(), -4);
        assert_eq!(moves[1].improvement(), 4);
    }

    #[test]
    fn diff_of_identical_rankings_is_empty() {
        let a = Ranking::new(vec![2, 0, 1]).unwrap();
        assert!(a.diff(&a).unwrap().is_empty());
    }

    #[test]
    fn diff_rejects_length_mismatch() {
        let a = Ranking::new(vec![0, 1]).unwrap();
        let b = Ranking::new(vec![0, 1, 2]).unwrap();
        assert!(a.diff(&b).is_err());
    }

    #[test]
    fn diff_move_count_bounds_kendall_tau() {
        // Each move participates in at least ⌈|move|⌉ inversions; the diff
        // and the distance must be consistent: τ ≥ max|improvement|.
        let a = Ranking::new(vec![0, 1, 2, 3, 4, 5]).unwrap();
        let b = Ranking::new(vec![1, 2, 3, 0, 4, 5]).unwrap();
        let moves = a.diff(&b).unwrap();
        let tau = a.kendall_tau_distance(&b).unwrap();
        let max_move = moves.iter().map(|m| m.improvement().abs()).max().unwrap();
        assert!(tau as isize >= max_move);
        assert_eq!(tau, 3);
        assert_eq!(moves.len(), 4);
    }

    #[test]
    fn hash_equality_for_counting() {
        use std::collections::HashMap;
        let mut counts: HashMap<TopKSet, u32> = HashMap::new();
        let a = Ranking::new(vec![2, 0, 1]).unwrap();
        let b = Ranking::new(vec![0, 2, 1]).unwrap();
        *counts.entry(a.top_k_set(2)).or_default() += 1;
        *counts.entry(b.top_k_set(2)).or_default() += 1;
        assert_eq!(counts.len(), 1);
        assert_eq!(counts.values().sum::<u32>(), 2);
    }
}
