//! Property-based tests for the extension modules: the baseline 2-D
//! enumerator, exact top-k stability, max-margin justification, the exact
//! 3-D oracle, and tolerant stability.

use proptest::prelude::*;
use srank_core::prelude::*;
use srank_core::regions_via_sorted_exchanges;

fn attr() -> impl Strategy<Value = f64> {
    0.01..0.99f64
}

fn rows(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(attr(), d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two independently-implemented exact 2-D enumerators must agree on
    /// every random dataset.
    #[test]
    fn baseline_and_sweep_agree(data in rows(2, 2..25)) {
        let data = Dataset::from_rows(&data).unwrap();
        let baseline = regions_via_sorted_exchanges(&data, AngleInterval::full()).unwrap();
        let sweep = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        prop_assert_eq!(baseline.len(), sweep.num_regions());
        for (a, b) in baseline.iter().zip(sweep.regions()) {
            prop_assert!((a.lo - b.lo).abs() < 1e-10);
            prop_assert!((a.hi - b.hi).abs() < 1e-10);
        }
    }

    /// Max-margin weights always regenerate their ranking, with a positive
    /// margin, for every feasible ranking of random data.
    #[test]
    fn max_margin_weights_are_sound(data in rows(3, 2..15), w in prop::collection::vec(0.05..1.0f64, 3)) {
        let data = Dataset::from_rows(&data).unwrap();
        let r = data.rank(&w).unwrap();
        if let Some(mm) = max_margin_weights(&data, &r).unwrap() {
            prop_assert_eq!(data.rank(&mm.weights).unwrap(), r);
            prop_assert!(mm.margin > 0.0);
            prop_assert!((mm.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // Feasibility can only fail on exact score ties (measure zero).
    }

    /// The exact 3-D oracle agrees with SV2D's logic extended: the region
    /// of the observed ranking contains the generator and has positive
    /// exact stability.
    #[test]
    fn exact_3d_stability_is_sound(data in rows(3, 2..12), w in prop::collection::vec(0.05..1.0f64, 3)) {
        let data = Dataset::from_rows(&data).unwrap();
        let r = data.rank(&w).unwrap();
        let v = stability_verify_3d_exact(&data, &r).unwrap();
        if let Some(v) = v {
            prop_assert!(v.stability > 0.0, "observed ranking must have positive area");
            prop_assert!(v.stability <= 1.0 + 1e-9);
            // Complementary check: swapping the top pair gives a disjoint
            // region; areas of the two cannot exceed 1 together.
            let mut order = r.order().to_vec();
            if order.len() >= 2 {
                order.swap(0, 1);
                let swapped = Ranking::new(order).unwrap();
                if let Some(v2) = stability_verify_3d_exact(&data, &swapped).unwrap() {
                    prop_assert!(v.stability + v2.stability <= 1.0 + 1e-6);
                }
            }
        }
    }

    /// Exact top-k masses always partition unity and the best set's mass
    /// dominates the best ranked prefix's.
    #[test]
    fn topk2d_partition_and_dominance(data in rows(2, 3..20), k in 1usize..5) {
        let data = Dataset::from_rows(&data).unwrap();
        let sets = top_k_set_stabilities_2d(&data, AngleInterval::full(), k).unwrap();
        let ranked = top_k_ranked_stabilities_2d(&data, AngleInterval::full(), k).unwrap();
        let s_total: f64 = sets.iter().map(|(_, m)| m).sum();
        let r_total: f64 = ranked.iter().map(|(_, m)| m).sum();
        prop_assert!((s_total - 1.0).abs() < 1e-9);
        prop_assert!((r_total - 1.0).abs() < 1e-9);
        prop_assert!(sets[0].1 >= ranked[0].1 - 1e-12);
        prop_assert!(sets.len() <= ranked.len());
    }

    /// τ-tolerant stability is monotone in τ and bounded by total mass.
    #[test]
    fn tau_tolerance_is_monotone(data in rows(2, 3..10)) {
        let data = Dataset::from_rows(&data).unwrap();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let enumeration: Vec<(Ranking, f64)> =
            std::iter::from_fn(|| e.get_next()).map(|s| (s.ranking, s.stability)).collect();
        let center = &enumeration[0].0;
        let mut prev = 0.0;
        for tau in 0..6 {
            let v = tau_tolerant_stability(center, &enumeration, tau).unwrap();
            prop_assert!(v >= prev - 1e-12);
            prop_assert!(v <= 1.0 + 1e-9);
            prev = v;
        }
    }

    /// Ranking diffs are involutive (swapping arguments flips directions)
    /// and consistent with rank lookups.
    #[test]
    fn diff_is_consistent(data in rows(2, 2..15), w1 in prop::collection::vec(0.05..1.0f64, 2), w2 in prop::collection::vec(0.05..1.0f64, 2)) {
        let data = Dataset::from_rows(&data).unwrap();
        let a = data.rank(&w1).unwrap();
        let b = data.rank(&w2).unwrap();
        let ab = a.diff(&b).unwrap();
        let ba = b.diff(&a).unwrap();
        prop_assert_eq!(ab.len(), ba.len());
        for m in &ab {
            prop_assert_eq!(a.rank_of(m.item), Some(m.from));
            prop_assert_eq!(b.rank_of(m.item), Some(m.to));
            // The reverse diff contains the mirrored move.
            prop_assert!(ba.iter().any(|r| r.item == m.item && r.from == m.to && r.to == m.from));
        }
        prop_assert_eq!(ab.is_empty(), a == b);
    }
}
