//! The interned accumulator must be *indistinguishable* from the
//! straightforward `HashMap<Vec<u32>, (count, exemplar)>` accumulator it
//! replaced: byte-identical keys, counts, and exemplars across scopes,
//! seeds, and thread counts — plus run-to-run determinism of the parallel
//! sampler over the new layout.

use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_core::prelude::*;
use std::collections::HashMap;

fn lcg_rows(n: usize, d: usize, mut state: u64) -> Vec<Vec<f64>> {
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

/// The pre-interning reference accumulator: sample with the *same* RNG
/// stream, key with the convenience ranking APIs, count into a `HashMap`.
fn reference_counts(
    data: &Dataset,
    roi: &RegionOfInterest,
    scope: RankingScope,
    seed: u64,
    n: usize,
) -> HashMap<Vec<u32>, (u64, Vec<f64>)> {
    let sampler = roi.sampler();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: HashMap<Vec<u32>, (u64, Vec<f64>)> = HashMap::new();
    for _ in 0..n {
        let w = sampler.sample(&mut rng);
        let key = match scope {
            RankingScope::Full => data.rank(&w).unwrap().order().to_vec(),
            RankingScope::TopKRanked(k) => data.top_k(&w, k).unwrap(),
            RankingScope::TopKSet(k) => {
                let mut set = data.top_k(&w, k).unwrap();
                set.sort_unstable();
                set
            }
        };
        counts.entry(key).and_modify(|e| e.0 += 1).or_insert((1, w));
    }
    counts
}

fn interned_counts(e: &RandomizedEnumerator<'_>) -> HashMap<Vec<u32>, (u64, Vec<f64>)> {
    e.observed()
        .map(|(k, c, x)| (k.to_vec(), (c, x.to_vec())))
        .collect()
}

#[test]
fn interned_accumulator_matches_hashmap_reference_across_scopes_and_seeds() {
    let data = Dataset::from_rows(&lcg_rows(18, 3, 901)).unwrap();
    let roi = RegionOfInterest::full(3);
    let scopes = [
        RankingScope::Full,
        RankingScope::TopKRanked(5),
        RankingScope::TopKSet(5),
        RankingScope::TopKRanked(30), // clamps past n
    ];
    for scope in scopes {
        for seed in [1u64, 77, 4040] {
            let reference = reference_counts(&data, &roi, scope, seed, 3000);
            let mut e = RandomizedEnumerator::new(&data, &roi, scope, 0.05).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            e.sample_n(&mut rng, 3000);
            let got = interned_counts(&e);
            assert_eq!(got.len(), reference.len(), "{scope:?} seed {seed}");
            assert_eq!(got, reference, "{scope:?} seed {seed}");
        }
    }
}

#[test]
fn interned_accumulator_matches_reference_on_cone_roi() {
    let data = Dataset::from_rows(&lcg_rows(25, 4, 55)).unwrap();
    let roi = RegionOfInterest::cone(&[1.0, 0.8, 0.6, 0.4], std::f64::consts::PI / 30.0);
    let scope = RankingScope::TopKRanked(8);
    let reference = reference_counts(&data, &roi, scope, 9, 2000);
    let mut e = RandomizedEnumerator::new(&data, &roi, scope, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    e.sample_n(&mut rng, 2000);
    assert_eq!(interned_counts(&e), reference);
}

#[test]
fn parallel_tables_merge_to_the_worker_union_for_every_thread_count() {
    let data = Dataset::from_rows(&lcg_rows(14, 3, 313)).unwrap();
    let roi = RegionOfInterest::full(3);
    for scope in [RankingScope::Full, RankingScope::TopKSet(4)] {
        for threads in [1usize, 2, 3, 4, 7] {
            // Reference: per-worker sequential accumulation with the
            // worker-seed convention of sample_n_parallel.
            let n = 2003usize;
            let share = n / threads;
            let remainder = n % threads;
            let mut reference: HashMap<Vec<u32>, (u64, Vec<f64>)> = HashMap::new();
            for t in 0..threads {
                let budget = share + usize::from(t < remainder);
                for (key, (count, exemplar)) in
                    reference_counts(&data, &roi, scope, 91 + t as u64, budget)
                {
                    reference
                        .entry(key)
                        .and_modify(|e| e.0 += count)
                        .or_insert((count, exemplar));
                }
            }
            let mut e = RandomizedEnumerator::new(&data, &roi, scope, 0.05).unwrap();
            e.sample_n_parallel(91, n, threads);
            assert_eq!(e.total_samples(), n as u64);
            assert_eq!(interned_counts(&e), reference, "{scope:?} × {threads}");
        }
    }
}

#[test]
fn parallel_sampling_is_deterministic_over_the_interned_layout() {
    let data = Dataset::from_rows(&lcg_rows(16, 3, 717)).unwrap();
    let roi = RegionOfInterest::full(3);
    let run = |threads: usize| {
        let mut e =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(6), 0.05).unwrap();
        e.sample_n_parallel(5, 5000, threads);
        // Full dump, order included: insertion order must reproduce.
        e.observed()
            .map(|(k, c, x)| (k.to_vec(), c, x.to_vec()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(4), run(4), "same thread count ⇒ identical table");
    // Different thread counts may order entries differently but must agree
    // as multisets of (key, count).
    let as_map = |v: Vec<(Vec<u32>, u64, Vec<f64>)>| {
        v.into_iter()
            .map(|(k, c, _)| (k, c))
            .collect::<HashMap<_, _>>()
    };
    assert_eq!(as_map(run(1)), as_map(run(1)));
}

#[test]
fn observe_samples_equals_drawing_the_same_stream() {
    // A cached batch drawn from the sampler must count exactly like
    // sampling live with the RNG that generated it.
    let data = Dataset::from_rows(&lcg_rows(20, 3, 99)).unwrap();
    let roi = RegionOfInterest::full(3);
    let scope = RankingScope::TopKSet(5);

    let mut rng = StdRng::seed_from_u64(1234);
    let batch = roi.sampler().sample_buffer(&mut rng, 4000);
    let mut fed = RandomizedEnumerator::new(&data, &roi, scope, 0.05).unwrap();
    fed.observe_samples(&batch).unwrap();

    let mut live = RandomizedEnumerator::new(&data, &roi, scope, 0.05).unwrap();
    let mut rng2 = StdRng::seed_from_u64(1234);
    live.sample_n(&mut rng2, 4000);

    assert_eq!(fed.total_samples(), live.total_samples());
    assert_eq!(interned_counts(&fed), interned_counts(&live));
}

#[test]
fn observe_samples_rejects_dimension_mismatch() {
    let data = Dataset::figure1();
    let roi3 = RegionOfInterest::full(3);
    let mut rng = StdRng::seed_from_u64(3);
    let batch = roi3.sampler().sample_buffer(&mut rng, 10);
    let roi2 = RegionOfInterest::full(2);
    let mut e = RandomizedEnumerator::new(&data, &roi2, RankingScope::Full, 0.05).unwrap();
    assert!(e.observe_samples(&batch).is_err());
    assert_eq!(e.total_samples(), 0, "failed feed must not count");
}

#[test]
fn state_round_trip_preserves_the_interned_table_exactly() {
    let data = Dataset::from_rows(&lcg_rows(12, 3, 47)).unwrap();
    let roi = RegionOfInterest::full(3);
    let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    e.sample_n(&mut rng, 1500);
    let first = e.get_next_budget(&mut rng, 0).unwrap();
    let before = interned_counts(&e);

    let state = e.into_state();
    assert_eq!(state.total_samples(), 1500);
    let mut back = RandomizedEnumerator::from_state(&data, state).unwrap();
    assert_eq!(interned_counts(&back), before);
    // Returned flags survive the round trip: the first ranking does not
    // come back.
    while let Some(d) = back.get_next_budget(&mut rng, 0) {
        assert_ne!(d.items, first.items);
    }
}
