//! Round-trip property tests for the durable state serialization: every
//! detachable enumerator state must survive `to_value` → JSON text →
//! `from_value` with its *behavior* intact — a restored enumerator must
//! continue the exact stream an uninterrupted one would have produced,
//! including mid-enumeration snapshots taken at arbitrary points.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_core::prelude::*;
use srank_core::{MdState, RandomizedState, Sweep2DState};
use srank_sample::roi::RegionOfInterest;

fn attr() -> impl Strategy<Value = f64> {
    0.01..0.99f64
}

fn rows(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(attr(), d), n)
}

/// Detach → serialize → parse → restore, through actual JSON text (the
/// same path the on-disk snapshot files take).
fn reload_sweep(state: Sweep2DState) -> Sweep2DState {
    let text = serde_json::to_string(&state.to_value()).unwrap();
    Sweep2DState::from_value(&serde_json::from_str(&text).unwrap()).unwrap()
}

fn reload_md(state: MdState) -> MdState {
    let text = serde_json::to_string(&state.to_value()).unwrap();
    MdState::from_value(&serde_json::from_str(&text).unwrap()).unwrap()
}

fn reload_randomized(state: RandomizedState) -> RandomizedState {
    let text = serde_json::to_string(&state.to_value()).unwrap();
    RandomizedState::from_value(&serde_json::from_str(&text).unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A 2-D sweep session serialized mid-enumeration continues with the
    /// identical region stream (ranking, stability, and region bounds).
    #[test]
    fn sweep2d_state_survives_json(data in rows(2, 2..20), advance in 0usize..6) {
        let data = Dataset::from_rows(&data).unwrap();
        let mut reference = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let mut session = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        for _ in 0..advance {
            reference.get_next();
            session.get_next();
        }
        let mut session =
            Enumerator2D::from_state(&data, reload_sweep(session.into_state())).unwrap();
        loop {
            match (reference.get_next(), session.get_next()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.ranking, b.ranking);
                    prop_assert_eq!(a.stability.to_bits(), b.stability.to_bits());
                    prop_assert_eq!(a.region, b.region);
                }
                other => prop_assert!(false, "streams diverged: {:?}", other),
            }
        }
    }

    /// The stored-rankings sweep variant round-trips too (its snapshots
    /// ride in the serialized state).
    #[test]
    fn sweep2d_stored_rankings_survive_json(data in rows(2, 2..15)) {
        let data = Dataset::from_rows(&data).unwrap();
        let mut reference =
            Enumerator2D::new_storing_rankings(&data, AngleInterval::full()).unwrap();
        let session = Enumerator2D::new_storing_rankings(&data, AngleInterval::full()).unwrap();
        let mut session =
            Enumerator2D::from_state(&data, reload_sweep(session.into_state())).unwrap();
        while let (Some(a), Some(b)) = (reference.get_next(), session.get_next()) {
            prop_assert_eq!(a.ranking, b.ranking);
        }
    }

    /// An arrangement session (lazy refinement, partitioned samples)
    /// serialized mid-enumeration continues identically: same rankings,
    /// same stability estimates, same representatives — even when the
    /// snapshot is taken between two splits of the same region.
    #[test]
    fn md_state_survives_json(
        data in rows(3, 2..10),
        n_samples in 50usize..300,
        advance in 0usize..4,
    ) {
        let data = Dataset::from_rows(&data).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(7);
        let reference = MdEnumerator::new(&data, &roi, n_samples, &mut rng).unwrap();
        let mut session = reference.clone();
        let mut reference = reference;
        for _ in 0..advance {
            reference.get_next();
            session.get_next();
        }
        let mut session = MdEnumerator::from_state(&data, reload_md(session.into_state())).unwrap();
        loop {
            match (reference.get_next(), session.get_next()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.ranking, b.ranking);
                    prop_assert_eq!(a.stability.to_bits(), b.stability.to_bits());
                    prop_assert_eq!(a.representative, b.representative);
                }
                other => prop_assert!(false, "streams diverged: {:?}", other),
            }
        }
    }

    /// A randomized session (interned counts + its RNG position, carried
    /// alongside as the service does) continues with identical
    /// discoveries across every scope.
    #[test]
    fn randomized_state_survives_json(
        data in rows(3, 4..12),
        seed in 0u64..1000,
        scope_pick in 0usize..3,
        advance in 0usize..3,
    ) {
        let data = Dataset::from_rows(&data).unwrap();
        let roi = RegionOfInterest::full(3);
        let scope = match scope_pick {
            0 => RankingScope::Full,
            1 => RankingScope::TopKRanked(3),
            _ => RankingScope::TopKSet(3),
        };
        let mut reference = RandomizedEnumerator::new(&data, &roi, scope, 0.05).unwrap();
        let mut session = RandomizedEnumerator::new(&data, &roi, scope, 0.05).unwrap();
        let mut ref_rng = StdRng::seed_from_u64(seed);
        let mut ses_rng = StdRng::seed_from_u64(seed);
        for _ in 0..advance {
            reference.get_next_budget(&mut ref_rng, 400);
            session.get_next_budget(&mut ses_rng, 400);
        }
        // Persist the counting state and the RNG position exactly as a
        // service session checkpoint does.
        let state = reload_randomized(session.into_state());
        let rng_words = ses_rng.state();
        let mut session = RandomizedEnumerator::from_state(&data, state).unwrap();
        let mut ses_rng = StdRng::from_state(rng_words);
        for _ in 0..3 {
            match (
                reference.get_next_budget(&mut ref_rng, 400),
                session.get_next_budget(&mut ses_rng, 400),
            ) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.items, b.items);
                    prop_assert_eq!(a.stability.to_bits(), b.stability.to_bits());
                    prop_assert_eq!(a.samples_used, b.samples_used);
                    prop_assert_eq!(a.exemplar_weights, b.exemplar_weights);
                }
                other => prop_assert!(false, "streams diverged: {:?}", other),
            }
        }
    }

    /// Cone regions of interest exercise the cap sampler's exact
    /// serialization (stored rotation matrix, rebuilt CDF): the restored
    /// sampler must replay the identical sample stream.
    #[test]
    fn randomized_cone_roi_survives_json(data in rows(4, 4..10), seed in 0u64..1000) {
        let data = Dataset::from_rows(&data).unwrap();
        let roi = RegionOfInterest::cone(&[1.0, 0.7, 0.5, 0.3], 0.2);
        let mut reference =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(3), 0.05).unwrap();
        let session =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(3), 0.05).unwrap();
        let mut ref_rng = StdRng::seed_from_u64(seed);
        let mut ses_rng = StdRng::seed_from_u64(seed);
        let state = reload_randomized(session.into_state());
        let mut session = RandomizedEnumerator::from_state(&data, state).unwrap();
        let a = reference.get_next_budget(&mut ref_rng, 500).unwrap();
        let b = session.get_next_budget(&mut ses_rng, 500).unwrap();
        prop_assert_eq!(a.items, b.items);
        prop_assert_eq!(a.stability.to_bits(), b.stability.to_bits());
        prop_assert_eq!(a.exemplar_weights, b.exemplar_weights);
    }
}

/// Corrupted payloads must decode to errors, never panic — the service
/// loader log-and-skips whatever this layer rejects.
#[test]
fn corrupted_states_error_instead_of_panicking() {
    let data = Dataset::figure1();
    let state = Enumerator2D::new(&data, AngleInterval::full())
        .unwrap()
        .into_state();
    let good = state.to_value();

    // Shape-level corruption.
    for bad in [
        "null",
        "{}",
        r#"{"n_items": 5}"#,
        r#"{"n_items": 5, "regions": "x", "stored": null, "heap": []}"#,
        // Heap referencing a region index beyond the region list.
        r#"{"n_items": 5, "regions": [[0.0, 1.0, 1.0]], "stored": null, "heap": [[1.0, 7]]}"#,
        // Stored ranking that is not a permutation.
        r#"{"n_items": 2, "regions": [[0.0, 1.0, 1.0]], "stored": [[0, 0]], "heap": []}"#,
    ] {
        let v = serde_json::from_str(bad).unwrap();
        assert!(
            Sweep2DState::from_value(&v).is_err(),
            "accepted corrupt state: {bad}"
        );
    }

    // Field-level corruption of an otherwise-valid snapshot.
    let serde_json::Value::Object(fields) = good else {
        panic!("states serialize as objects")
    };
    for (k, _) in &fields {
        let mutated: Vec<(String, serde_json::Value)> = fields
            .iter()
            .map(|(key, v)| {
                if key == k {
                    (key.clone(), serde_json::Value::String("corrupt".into()))
                } else {
                    (key.clone(), v.clone())
                }
            })
            .collect();
        assert!(
            Sweep2DState::from_value(&serde_json::Value::Object(mutated)).is_err(),
            "field '{k}' replaced by a string must not decode"
        );
    }

    // Randomized: interner arena length mismatch.
    let roi = RegionOfInterest::full(2);
    let op = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
    let v = op.into_state().to_value();
    let text = serde_json::to_string(&v).unwrap();
    let truncated = text.replace("\"total\":0", "\"total\":\"x\"");
    let parsed = serde_json::from_str(&truncated).unwrap();
    assert!(RandomizedState::from_value(&parsed).is_err());
}
