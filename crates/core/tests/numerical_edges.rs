//! Numerical edge cases: near-ties, extreme scales, and high dimensions.
//!
//! The geometric predicates all run at `f64` with the crate-wide `EPS`
//! tolerance; these tests pin the behaviour at the edges where rounding
//! could otherwise silently corrupt regions or stabilities.

use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_core::prelude::*;
use srank_core::regions_via_sorted_exchanges;

/// Items separated by 1e-12 in one attribute: the exchange geometry is
/// extreme but the sweep must still partition the quadrant exactly.
#[test]
fn hairline_attribute_gaps_keep_partition_exact() {
    let data = Dataset::from_rows(&[
        vec![0.500000000001, 0.5],
        vec![0.5, 0.500000000001],
        vec![0.9, 0.1],
    ])
    .unwrap();
    let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
    let total: f64 = e.regions().iter().map(|r| r.stability).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // The hairline pair's exchange sits essentially on the diagonal; both
    // orderings must appear with ~equal mass.
    let baseline = regions_via_sorted_exchanges(&data, AngleInterval::full()).unwrap();
    assert_eq!(baseline.len(), e.num_regions());
}

/// Scores that collide to the same f64 value under one weighting must not
/// produce duplicate or missing items in the ranking.
#[test]
fn exact_score_ties_resolve_by_index_everywhere() {
    // t0 and t1 tie exactly under (1, 1).
    let data = Dataset::from_rows(&[vec![0.25, 0.75], vec![0.75, 0.25], vec![0.5, 0.5]]).unwrap();
    let r = data.rank(&[1.0, 1.0]).unwrap();
    // All three items tie at 1.0 under equal weights: index order.
    assert_eq!(r.order(), &[0, 1, 2]);
    // And top-k agrees with the full ranking's prefix despite ties.
    for k in 1..=3 {
        assert_eq!(
            data.top_k(&[1.0, 1.0], k).unwrap().as_slice(),
            &r.order()[..k]
        );
    }
}

/// Tiny attribute magnitudes (subnormal-adjacent) flow through the whole
/// pipeline without NaNs or panics.
#[test]
fn tiny_magnitudes_are_handled() {
    let data = Dataset::from_rows(&[
        vec![1e-300, 2e-300],
        vec![2e-300, 1e-300],
        vec![1.5e-300, 1.5e-300],
    ])
    .unwrap();
    let v = stability_verify_2d(
        &data,
        &data.rank(&[1.0, 1.0]).unwrap(),
        AngleInterval::full(),
    )
    .unwrap();
    if let Some(v) = v {
        assert!(v.stability.is_finite());
        assert!(v.stability >= 0.0);
    }
}

/// Eight attributes: the cap sampler, the oracle, and the randomized
/// operator all work beyond the paper's d = 5 maximum.
#[test]
fn eight_dimensional_pipeline_works() {
    let mut state = 0x8D8D8D8Du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let rows: Vec<Vec<f64>> = (0..40).map(|_| (0..8).map(|_| next()).collect()).collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let roi = RegionOfInterest::cone(&[1.0; 8], std::f64::consts::PI / 50.0);
    let mut op = RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(5), 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(88);
    let d = op.get_next_budget(&mut rng, 1000).unwrap();
    assert_eq!(d.items.len(), 5);
    assert!(roi.contains(&d.exemplar_weights));
    assert!(d.stability > 0.0 && d.stability <= 1.0);
}

/// One hundred LP constraints (a full ranking region of a 101-item
/// dataset): the simplex stays stable and the witness reproduces the
/// ranking.
#[test]
fn lp_scales_to_a_hundred_constraints() {
    let mut state = 0xC0FFEEu64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let rows: Vec<Vec<f64>> = (0..101).map(|_| (0..3).map(|_| next()).collect()).collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let r = data.rank(&[0.4, 0.35, 0.25]).unwrap();
    let mm = max_margin_weights(&data, &r)
        .unwrap()
        .expect("observed ranking is feasible");
    assert_eq!(data.rank(&mm.weights).unwrap(), r);
    assert!(mm.margin > 0.0);
}

/// A one-item and a two-item dataset through every operator: the smallest
/// possible inputs must not hit degenerate branches.
#[test]
fn minimal_datasets_through_every_operator() {
    let one = Dataset::from_rows(&[vec![0.3, 0.7]]).unwrap();
    let two = Dataset::from_rows(&[vec![0.8, 0.2], vec![0.2, 0.8]]).unwrap();
    // SV2D.
    let v = stability_verify_2d(&one, &one.rank(&[1.0, 1.0]).unwrap(), AngleInterval::full())
        .unwrap()
        .unwrap();
    assert_eq!(v.stability, 1.0);
    // Sweep.
    let mut e = Enumerator2D::new(&two, AngleInterval::full()).unwrap();
    assert_eq!(e.top_h(10).len(), 2);
    // Arrangement.
    let roi = RegionOfInterest::full(2);
    let mut rng = StdRng::seed_from_u64(9);
    let mut md = MdEnumerator::new(&two, &roi, 500, &mut rng).unwrap();
    let mut total = 0.0;
    while let Some(s) = md.get_next() {
        total += s.stability;
    }
    assert!((total - 1.0).abs() < 1e-9);
    // Randomized.
    let mut op = RandomizedEnumerator::new(&one, &roi, RankingScope::Full, 0.05).unwrap();
    let d = op.get_next_budget(&mut rng, 50).unwrap();
    assert_eq!(d.stability, 1.0);
    // Exact 3D on the minimal 3-attribute input.
    let one3 = Dataset::from_rows(&[vec![0.1, 0.2, 0.3]]).unwrap();
    let v3 = stability_verify_3d_exact(&one3, &one3.rank(&[1.0, 1.0, 1.0]).unwrap())
        .unwrap()
        .unwrap();
    assert!((v3.stability - 1.0).abs() < 1e-9);
}

/// Weights at the orthant boundary (zeros in some coordinates) are valid
/// scoring functions and verify cleanly.
#[test]
fn axis_aligned_weights_verify() {
    let data = Dataset::figure1();
    for w in [[1.0, 0.0], [0.0, 1.0]] {
        let r = data.rank(&w).unwrap();
        let v = stability_verify_2d(&data, &r, AngleInterval::full())
            .unwrap()
            .unwrap();
        assert!(v.stability > 0.0);
        // The generating boundary angle sits inside the closed region.
        let theta = w[1].atan2(w[0]);
        assert!(v.region.lo() <= theta + 1e-12 && theta <= v.region.hi() + 1e-12);
    }
}
