//! Property-based tests for the core algorithms: the exact 2-D path, the
//! arrangement path, and the randomized path must all tell one story.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_core::prelude::*;
use srank_geom::angle2d::weight_from_angle_2d;

fn attr() -> impl Strategy<Value = f64> {
    0.01..0.99f64
}

fn rows(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(attr(), d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SV2D's region must contain the generating angle, and ranking at any
    /// interior angle of the region must reproduce the ranking.
    #[test]
    fn sv2d_region_is_sound(data in rows(2, 2..25), theta_frac in 0.01..0.99f64) {
        let data = Dataset::from_rows(&data).unwrap();
        let theta = theta_frac * std::f64::consts::FRAC_PI_2;
        let r = data.rank(&weight_from_angle_2d(theta)).unwrap();
        let v = stability_verify_2d(&data, &r, AngleInterval::full())
            .unwrap()
            .expect("observed ranking is feasible");
        prop_assert!(v.region.lo() <= theta && theta <= v.region.hi());
        // Probe the interior.
        for i in 1..8 {
            let t = v.region.lo() + v.region.span() * i as f64 / 8.0;
            let probe = data.rank(&weight_from_angle_2d(t)).unwrap();
            prop_assert_eq!(&probe, &r);
        }
        prop_assert!(v.stability > 0.0 && v.stability <= 1.0);
    }

    /// The sweep partitions U* and its per-region stabilities agree with
    /// SV2D run independently on each region's midpoint ranking.
    #[test]
    fn sweep_agrees_with_sv2d(data in rows(2, 2..20)) {
        let data = Dataset::from_rows(&data).unwrap();
        let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let mut total = 0.0;
        for region in e.regions() {
            let r = data.rank(&weight_from_angle_2d(region.midpoint())).unwrap();
            let v = stability_verify_2d(&data, &r, AngleInterval::full())
                .unwrap()
                .expect("region midpoint ranking is feasible");
            prop_assert!(
                (v.stability - region.stability).abs() < 1e-9,
                "sweep {} vs sv2d {}", region.stability, v.stability
            );
            total += region.stability;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// The MD region of a 2-D ranking contains exactly the same functions
    /// as the 2-D angle region.
    #[test]
    fn md_region_matches_2d_region(data in rows(2, 2..15), theta_frac in 0.05..0.95f64) {
        let data = Dataset::from_rows(&data).unwrap();
        let theta = theta_frac * std::f64::consts::FRAC_PI_2;
        let r = data.rank(&weight_from_angle_2d(theta)).unwrap();
        let v2 = stability_verify_2d(&data, &r, AngleInterval::full()).unwrap().unwrap();
        let cone = srank_core::ranking_region_md(&data, &r).unwrap().unwrap();
        for i in 0..40 {
            let t = std::f64::consts::FRAC_PI_2 * (i as f64 + 0.5) / 40.0;
            let w = weight_from_angle_2d(t);
            let in_2d = t > v2.region.lo() + 1e-9 && t < v2.region.hi() - 1e-9;
            let on_boundary =
                (t - v2.region.lo()).abs() < 1e-9 || (t - v2.region.hi()).abs() < 1e-9;
            if !on_boundary {
                prop_assert_eq!(cone.contains(&w), in_2d, "disagreement at θ = {}", t);
            }
        }
    }

    /// Randomized estimates converge to exact 2-D stabilities.
    #[test]
    fn randomized_estimate_brackets_exact(data in rows(2, 2..12), seed in 0u64..1000) {
        let data = Dataset::from_rows(&data).unwrap();
        let roi = RegionOfInterest::full(2);
        let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(found) = e.get_next_budget(&mut rng, 3000) {
            let r = Ranking::new(found.items.clone()).unwrap();
            let exact = stability_verify_2d(&data, &r, AngleInterval::full())
                .unwrap()
                .expect("sampled rankings are feasible")
                .stability;
            // 99% CI plus slack for the 48 repetitions.
            let tol = (4.0 * found.confidence_error).max(0.02);
            prop_assert!(
                (found.stability - exact).abs() < tol,
                "estimate {} vs exact {} (tol {})", found.stability, exact, tol
            );
        }
    }

    /// Top-k ranked keys are prefixes of full rankings; top-k set keys are
    /// their sorted forms.
    #[test]
    fn topk_keys_are_consistent(data in rows(3, 5..30), seed in 0u64..1000, k in 1usize..5) {
        let data = Dataset::from_rows(&data).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ranked =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(k), 0.05).unwrap();
        let d = ranked.get_next_budget(&mut rng, 200).unwrap();
        // The exemplar regenerates the key...
        let again = data.top_k(&d.exemplar_weights, k).unwrap();
        prop_assert_eq!(&again, &d.items);
        // ...and the full ranking's prefix matches.
        let full = data.rank(&d.exemplar_weights).unwrap();
        prop_assert_eq!(&full.order()[..k.min(full.len())], d.items.as_slice());
    }

    /// The most stable top-k set is at least as stable as the most stable
    /// ranked top-k (sets merge ranked outcomes).
    #[test]
    fn set_stability_dominates_ranked(data in rows(3, 5..20), seed in 0u64..500) {
        let data = Dataset::from_rows(&data).unwrap();
        let roi = RegionOfInterest::full(3);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let mut ranked =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(3), 0.05).unwrap();
        let mut set =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(3), 0.05).unwrap();
        let a = ranked.get_next_budget(&mut r1, 1500).unwrap();
        let b = set.get_next_budget(&mut r2, 1500).unwrap();
        // Same seed ⇒ same samples ⇒ the set count of any ranked prefix's
        // underlying set is at least the ranked count.
        prop_assert!(b.stability >= a.stability - 1e-9);
    }

    /// Kendall-tau distance is a metric on the rankings the sweep returns.
    #[test]
    fn kendall_tau_triangle_inequality(data in rows(2, 3..12)) {
        let data = Dataset::from_rows(&data).unwrap();
        let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
        let all: Vec<StableRanking2D> = std::iter::from_fn(|| e.get_next()).collect();
        if all.len() >= 3 {
            let (a, b, c) = (&all[0].ranking, &all[1].ranking, &all[2].ranking);
            let ab = a.kendall_tau_distance(b).unwrap();
            let bc = b.kendall_tau_distance(c).unwrap();
            let ac = a.kendall_tau_distance(c).unwrap();
            prop_assert!(ac <= ab + bc);
            prop_assert!(ab > 0, "distinct rankings have positive distance");
        }
    }

    /// Dominance pairs hold their relative order in every enumerated
    /// ranking (2-D sweep over random data).
    #[test]
    fn dominance_is_respected_in_all_regions(data in rows(2, 2..15)) {
        let ds = Dataset::from_rows(&data).unwrap();
        let mut e = Enumerator2D::new(&ds, AngleInterval::full()).unwrap();
        let mut dominant_pairs = Vec::new();
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                if i != j && ds.dominates(i, j) {
                    dominant_pairs.push((i as u32, j as u32));
                }
            }
        }
        while let Some(s) = e.get_next() {
            for &(hi, lo) in &dominant_pairs {
                let ph = s.ranking.rank_of(hi).unwrap();
                let pl = s.ranking.rank_of(lo).unwrap();
                prop_assert!(ph < pl, "dominator {hi} below dominated {lo}");
            }
        }
    }
}
