//! Property-based tests for the sampling substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_geom::hyperplane::{HalfSpace, OrderingExchange};
use srank_geom::region::ConeRegion;
use srank_geom::vector::{angle_between, norm};
use srank_sample::cap::{CapSampler, RiemannTable};
use srank_sample::confidence::{confidence_error, required_samples};
use srank_sample::oracle::estimate_stability;
use srank_sample::partition::PartitionedSamples;
use srank_sample::roi::RegionOfInterest;
use srank_sample::special::{regularized_incomplete_beta, sin_power_integral};
use srank_sample::sphere::sample_orthant_direction;
use srank_sample::store::SampleBuffer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn orthant_samples_are_unit_nonnegative(seed in 0u64..10_000, d in 2usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = sample_orthant_direction(&mut rng, d);
        prop_assert_eq!(w.len(), d);
        prop_assert!((norm(&w) - 1.0).abs() < 1e-10);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn cap_samples_respect_theta(
        seed in 0u64..10_000,
        d in 2usize..6,
        theta_frac in 0.02f64..1.0,
    ) {
        let theta = theta_frac * std::f64::consts::FRAC_PI_2;
        let ray = vec![1.0; d];
        let sampler = CapSampler::new(&ray, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let w = sampler.sample(&mut rng);
            prop_assert!((norm(&w) - 1.0).abs() < 1e-9);
            let a = angle_between(&w, &ray).unwrap();
            prop_assert!(a <= theta + 1e-9, "angle {} > θ {}", a, theta);
        }
    }

    #[test]
    fn riemann_inverse_cdf_inverts_the_cdf(
        k in 0usize..6,
        theta in 0.05f64..1.57,
        y in 0.001f64..0.999,
    ) {
        let table = RiemannTable::new(theta, k, 4096);
        let x = table.inverse_cdf(y);
        prop_assert!((0.0..=theta + 1e-12).contains(&x));
        // F(x) recomputed analytically must be close to y.
        let f = sin_power_integral(x, k) / sin_power_integral(theta, k);
        prop_assert!((f - y).abs() < 2e-3, "F({x}) = {f} vs y = {y}");
    }

    #[test]
    fn incomplete_beta_is_monotone_cdf(a in 0.5f64..5.0, b in 0.5f64..5.0) {
        let mut prev = 0.0;
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            let v = regularized_incomplete_beta(x, a, b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn partition_blocks_satisfy_their_halfspace(
        seed in 0u64..10_000,
        coeffs in prop::collection::vec(-1.0..1.0f64, 3),
        n in 10usize..300,
    ) {
        prop_assume!(coeffs.iter().any(|c| c.abs() > 1e-3));
        let mut rng = StdRng::seed_from_u64(seed);
        let buf = SampleBuffer::generate(&mut rng, n, |r| sample_orthant_direction(r, 3));
        let mut ps = PartitionedSamples::new(buf);
        let hp = OrderingExchange::from_coeffs(coeffs);
        let split = ps.partition(0, n, &hp).split;
        for i in 0..split {
            prop_assert!(hp.eval(ps.row(i)) <= 0.0);
        }
        for i in split..n {
            prop_assert!(hp.eval(ps.row(i)) > 0.0);
        }
    }

    #[test]
    fn oracle_agrees_with_partition_count(
        seed in 0u64..10_000,
        coeffs in prop::collection::vec(-1.0..1.0f64, 3),
    ) {
        prop_assume!(coeffs.iter().any(|c| c.abs() > 1e-3));
        let mut rng = StdRng::seed_from_u64(seed);
        let buf = SampleBuffer::generate(&mut rng, 500, |r| sample_orthant_direction(r, 3));
        let region = ConeRegion::from_halfspaces(3, vec![HalfSpace::new(coeffs.clone())]);
        let s_oracle = estimate_stability(&region, &buf);
        let mut ps = PartitionedSamples::new(buf);
        let split = ps.partition(0, 500, &OrderingExchange::from_coeffs(coeffs)).split;
        let s_partition = ps.stability_of_range(split, 500);
        prop_assert!((s_oracle - s_partition).abs() < 1e-12);
    }

    #[test]
    fn complementary_regions_sum_to_one(
        seed in 0u64..10_000,
        coeffs in prop::collection::vec(-1.0..1.0f64, 4),
    ) {
        prop_assume!(coeffs.iter().any(|c| c.abs() > 1e-3));
        let mut rng = StdRng::seed_from_u64(seed);
        let buf = SampleBuffer::generate(&mut rng, 400, |r| sample_orthant_direction(r, 4));
        let h = HalfSpace::new(coeffs);
        let pos = ConeRegion::from_halfspaces(4, vec![h.clone()]);
        let neg = ConeRegion::from_halfspaces(4, vec![h.complement()]);
        let total = estimate_stability(&pos, &buf) + estimate_stability(&neg, &buf);
        // Only exact boundary hits (measure zero) can be dropped.
        prop_assert!(total <= 1.0 + 1e-12 && total > 0.99);
    }

    #[test]
    fn roi_samplers_stay_inside(seed in 0u64..10_000, theta_frac in 0.05f64..0.95) {
        let theta = theta_frac * std::f64::consts::FRAC_PI_2;
        let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], theta);
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = roi.sampler();
        for _ in 0..10 {
            let w = sampler.sample(&mut rng);
            prop_assert!(roi.contains(&w));
        }
    }

    #[test]
    fn confidence_error_monotone_in_n(m in 0.01f64..0.99, n in 10usize..10_000) {
        let e1 = confidence_error(m, n, 0.05);
        let e2 = confidence_error(m, 2 * n, 0.05);
        prop_assert!(e2 < e1);
        // And the required-samples inversion brackets correctly.
        let req = required_samples(m, 0.05, e1);
        prop_assert!(req <= n + 1);
    }
}
