//! Standard-normal deviates via the Marsaglia polar method.
//!
//! §5.1 samples points uniformly on the sphere by normalizing vectors of
//! independent `N(0, 1)` draws (Muller/Marsaglia). The workspace keeps its
//! dependency set minimal, so the normal generator is implemented here
//! rather than pulled from a distributions crate.

use rand::Rng;

/// A standard-normal sampler that caches the spare deviate the polar method
/// produces in pairs.
#[derive(Clone, Debug, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// One `N(0, 1)` deviate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u: f64 = 2.0 * rng.random::<f64>() - 1.0;
            let v: f64 = 2.0 * rng.random::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * m);
                return u * m;
            }
        }
    }

    /// Fills `out` with independent `N(0, 1)` deviates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }
}

/// Convenience: a single deviate without keeping sampler state (the spare
/// is discarded).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    NormalSampler::new().sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum3 = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut rng);
            sum += x;
            sum2 += x * x;
            sum3 += x * x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
        assert!(skew.abs() < 0.03, "third moment = {skew}");
    }

    #[test]
    fn tail_mass_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut s = NormalSampler::new();
        let n = 100_000;
        let beyond_two = (0..n).filter(|_| s.sample(&mut rng).abs() > 2.0).count();
        let frac = beyond_two as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((frac - 0.0455).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn spare_is_used_and_cleared() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = NormalSampler::new();
        let _ = s.sample(&mut rng);
        assert!(s.spare.is_some());
        let _ = s.sample(&mut rng);
        assert!(s.spare.is_none());
    }

    #[test]
    fn fill_produces_distinct_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = NormalSampler::new();
        let mut buf = [0.0; 8];
        s.fill(&mut rng, &mut buf);
        for w in buf.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = NormalSampler::new();
            (0..4).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
