//! Uniform sampling on the unit sphere and its first orthant (§5.1).
//!
//! Algorithm 9: draw `|N(0, 1)|` per coordinate and normalize. Because the
//! multivariate standard normal is rotation invariant, the normalized
//! vector is uniform on the sphere; taking absolute values folds it into
//! the first orthant, which is exactly the universe `U` of scoring
//! functions.
//!
//! The *naive* sampler — uniform angles, then `to_cartesian` — is biased
//! (Figure 3 of the paper) and is kept solely to demonstrate and test that
//! bias.

use crate::normal::NormalSampler;
use rand::Rng;
use srank_geom::polar::to_cartesian;
use std::f64::consts::FRAC_PI_2;

/// Algorithm 9: a uniform random scoring function — a point on the first
/// orthant of the unit `d`-sphere.
pub fn sample_orthant_direction<R: Rng + ?Sized>(rng: &mut R, d: usize) -> Vec<f64> {
    let mut w = Vec::new();
    sample_orthant_direction_into(rng, d, &mut w);
    w
}

/// [`sample_orthant_direction`] into a caller-provided buffer — the
/// zero-allocation form the Monte-Carlo hot loops use. Consumes the RNG
/// exactly like the allocating form (a fresh [`NormalSampler`] per draw),
/// so the two produce identical streams from identical generator states.
pub fn sample_orthant_direction_into<R: Rng + ?Sized>(rng: &mut R, d: usize, out: &mut Vec<f64>) {
    assert!(d >= 1, "sample_orthant_direction: need d ≥ 1");
    let mut normal = NormalSampler::new();
    loop {
        out.clear();
        out.extend((0..d).map(|_| normal.sample(rng).abs()));
        let n: f64 = out.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > f64::EPSILON {
            for x in out.iter_mut() {
                *x /= n;
            }
            return;
        }
    }
}

/// A uniform random direction on the full unit `d`-sphere.
pub fn sample_sphere_direction<R: Rng + ?Sized>(rng: &mut R, d: usize) -> Vec<f64> {
    assert!(d >= 1, "sample_sphere_direction: need d ≥ 1");
    let mut normal = NormalSampler::new();
    loop {
        let mut w: Vec<f64> = (0..d).map(|_| normal.sample(rng)).collect();
        let n: f64 = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > f64::EPSILON {
            for x in &mut w {
                *x /= n;
            }
            return w;
        }
    }
}

/// The biased sampler of Figure 3: draw the `d − 1` polar angles uniformly
/// in `[0, π/2]` and convert to Cartesian. Correct only for `d = 2`.
pub fn sample_angles_naive<R: Rng + ?Sized>(rng: &mut R, d: usize) -> Vec<f64> {
    assert!(d >= 2, "sample_angles_naive: need d ≥ 2");
    let angles: Vec<f64> = (0..d - 1)
        .map(|_| rng.random::<f64>() * FRAC_PI_2)
        .collect();
    to_cartesian(1.0, &angles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srank_geom::vector::norm;

    #[test]
    fn orthant_samples_are_unit_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let w = sample_orthant_direction(&mut rng, 4);
            assert!((norm(&w) - 1.0).abs() < 1e-12);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn sphere_samples_are_unit() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let w = sample_sphere_direction(&mut rng, 5);
            assert!((norm(&w) - 1.0).abs() < 1e-12);
        }
        // And they hit all sign patterns eventually.
        let mut saw_negative = false;
        for _ in 0..100 {
            if sample_sphere_direction(&mut rng, 3)
                .iter()
                .any(|&x| x < 0.0)
            {
                saw_negative = true;
                break;
            }
        }
        assert!(saw_negative);
    }

    /// Per-coordinate mean of a uniform orthant sample in R³. By symmetry
    /// all coordinates share the same mean; its exact value is the centroid
    /// coordinate of the spherical triangle, `E[x_i] = (4/π)·(1/2)/… `
    /// — rather than deriving it we assert symmetry plus a Monte-Carlo
    /// bracket, which is what distinguishes the unbiased sampler from the
    /// naive one below.
    #[test]
    fn orthant_sampler_is_coordinate_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let mut means = [0.0f64; 3];
        for _ in 0..n {
            let w = sample_orthant_direction(&mut rng, 3);
            for (m, x) in means.iter_mut().zip(&w) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        assert!((means[0] - means[1]).abs() < 0.01, "{means:?}");
        assert!((means[1] - means[2]).abs() < 0.01, "{means:?}");
    }

    /// The Figure 3 demonstration, as a statistic instead of a scatter
    /// plot: under uniform-angle sampling in R³ the last coordinate is
    /// cos(θ₂) with θ₂ ~ U[0, π/2], so E[x₃] = 2/π ≈ 0.637 — far above the
    /// unbiased sampler's symmetric mean. The naive sampler is *not*
    /// coordinate-symmetric.
    #[test]
    fn naive_sampler_is_biased_toward_last_axis() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 60_000;
        let mut mean_last = 0.0;
        let mut mean_first = 0.0;
        for _ in 0..n {
            let w = sample_angles_naive(&mut rng, 3);
            mean_last += w[2];
            mean_first += w[0];
        }
        mean_last /= n as f64;
        mean_first /= n as f64;
        assert!(
            (mean_last - 2.0 / std::f64::consts::PI).abs() < 0.01,
            "E[x₃] = {mean_last}, expected ≈ 0.6366"
        );
        assert!(
            mean_last - mean_first > 0.1,
            "naive sampler must be asymmetric"
        );
    }

    #[test]
    fn naive_sampler_is_fine_in_2d() {
        // In 2D the arc-length measure *is* the angle measure, so the naive
        // sampler is unbiased; the empirical mean angle must be π/4.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mut mean_angle = 0.0;
        for _ in 0..n {
            let w = sample_angles_naive(&mut rng, 2);
            mean_angle += w[1].atan2(w[0]);
        }
        mean_angle /= n as f64;
        assert!((mean_angle - std::f64::consts::FRAC_PI_4).abs() < 0.01);
    }

    /// Chi-square uniformity of the orthant sampler over octant-like solid
    /// angle cells: split by which coordinate is largest — by symmetry each
    /// cell has probability 1/3 in R³.
    #[test]
    fn orthant_sampler_chi_square_on_argmax_cells() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 30_000usize;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let w = sample_orthant_direction(&mut rng, 3);
            let argmax = (0..3)
                .max_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap())
                .unwrap();
            counts[argmax] += 1;
        }
        let expected = n as f64 / 3.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        // 2 degrees of freedom; P(χ² > 13.8) ≈ 0.001.
        assert!(chi2 < 13.8, "χ² = {chi2}, counts = {counts:?}");
    }
}
