//! Acceptance–rejection sampling and the §5.2 method-selection cost model.
//!
//! The paper's rule: use acceptance–rejection (draw from the function space,
//! keep what lands in `U*`) when the region is large, and the inverse-CDF
//! cap sampler when it is small. The crossover compares the `O(log |L|)`
//! lookup of the table method against the expected `1/p` trials of
//! rejection, where `p` is the area ratio of Eqs. 12–13.

use crate::special::{ln_gamma, sin_power_integral};
use rand::Rng;
use std::f64::consts::PI;

/// A generic acceptance–rejection sampler: repeatedly draw from `proposal`
/// and keep draws satisfying `accept`.
pub struct RejectionSampler<P, A> {
    proposal: P,
    accept: A,
}

impl<P, A> RejectionSampler<P, A>
where
    P: FnMut(&mut dyn rand::RngCore) -> Vec<f64>,
    A: FnMut(&[f64]) -> bool,
{
    pub fn new(proposal: P, accept: A) -> Self {
        Self { proposal, accept }
    }

    /// Draws one accepted sample, also reporting how many proposals it
    /// consumed; `None` if `max_trials` proposals were all rejected.
    pub fn sample_counted<R: Rng>(
        &mut self,
        rng: &mut R,
        max_trials: usize,
    ) -> Option<(Vec<f64>, usize)> {
        for trial in 1..=max_trials {
            let w = (self.proposal)(rng);
            if (self.accept)(&w) {
                return Some((w, trial));
            }
        }
        None
    }
}

/// Surface area of the unit `(δ)`-sphere `S^{δ−1} ⊂ R^δ` (Eq. 12 with
/// `r = 1`): `2 π^{δ/2} / Γ(δ/2)`.
pub fn unit_sphere_area(delta: usize) -> f64 {
    assert!(delta >= 1, "unit_sphere_area: need δ ≥ 1");
    let half = delta as f64 / 2.0;
    2.0 * (half * PI.ln() - ln_gamma(half)).exp()
}

/// Surface area of the unit `d`-spherical cap of angle `θ` (Eq. 13):
/// `A_{d−1}(1) · ∫₀^θ sin^{d−2} φ dφ`.
pub fn unit_cap_area(d: usize, theta: f64) -> f64 {
    assert!(d >= 2, "unit_cap_area: need d ≥ 2");
    unit_sphere_area(d - 1) * sin_power_integral(theta, d - 2)
}

/// Expected number of proposals for rejection-sampling a cap of angle `θ`
/// from a *full-orthant* proposal: the ratio of the orthant's area
/// (`2^{−d}` of the sphere) to the cap's area. This assumes the cap lies
/// inside the orthant, which holds for the narrow regions of interest the
/// evaluation uses.
pub fn expected_rejection_trials(d: usize, theta: f64) -> f64 {
    let orthant = unit_sphere_area(d) / 2f64.powi(d as i32);
    orthant / unit_cap_area(d, theta)
}

/// The §5.2 selection rule: `true` when the inverse-CDF method (cost
/// `O(log |L|)` per sample) is expected to beat acceptance–rejection (cost
/// `≈ expected_rejection_trials` proposals per sample).
pub fn prefer_inverse_cdf(d: usize, theta: f64, table_size: usize) -> bool {
    let lookup_cost = (table_size.max(2) as f64).log2();
    lookup_cost <= expected_rejection_trials(d, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn sphere_areas_match_known_values() {
        // S¹ (circle): 2π. S² (sphere in R³): 4π. S³: 2π².
        assert!((unit_sphere_area(2) - 2.0 * PI).abs() < 1e-10);
        assert!((unit_sphere_area(3) - 4.0 * PI).abs() < 1e-10);
        assert!((unit_sphere_area(4) - 2.0 * PI * PI).abs() < 1e-10);
    }

    #[test]
    fn hemisphere_cap_is_half_sphere() {
        // θ = π/2 carves out exactly half of the sphere's surface... for a
        // cap that is a hemisphere.
        for d in 2..6 {
            let cap = unit_cap_area(d, FRAC_PI_2);
            let half = unit_sphere_area(d) / 2.0;
            assert!((cap - half).abs() < 1e-9, "d = {d}: {cap} vs {half}");
        }
    }

    #[test]
    fn cap_area_is_monotone_in_theta() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let a = unit_cap_area(4, i as f64 * FRAC_PI_2 / 10.0);
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn rejection_trials_grow_as_cap_shrinks() {
        let wide = expected_rejection_trials(3, FRAC_PI_2 / 2.0);
        let narrow = expected_rejection_trials(3, PI / 100.0);
        assert!(narrow > wide);
        assert!(narrow > 100.0, "π/100 cap in 3D is tiny: {narrow}");
    }

    #[test]
    fn empirical_rejection_rate_matches_model() {
        // Rejection-sample a 3D cap from the orthant and compare the trial
        // count against the analytic expectation. The cap around the
        // diagonal at θ = π/10 stays inside the orthant, so the model's
        // assumption holds.
        let mut rng = StdRng::seed_from_u64(31);
        let theta = PI / 10.0;
        let diag = [1.0 / 3f64.sqrt(); 3];
        let mut sampler = RejectionSampler::new(
            |r: &mut dyn rand::RngCore| crate::sphere::sample_orthant_direction(r, 3),
            |w: &[f64]| srank_geom::vector::angle_between(w, &diag).unwrap() <= theta,
        );
        let rounds = 400;
        let mut total_trials = 0usize;
        for _ in 0..rounds {
            let (_, trials) = sampler.sample_counted(&mut rng, 1_000_000).unwrap();
            total_trials += trials;
        }
        let empirical = total_trials as f64 / rounds as f64;
        let expected = expected_rejection_trials(3, theta);
        assert!(
            (empirical - expected).abs() / expected < 0.25,
            "empirical {empirical} vs model {expected}"
        );
    }

    #[test]
    fn method_selection_prefers_table_for_narrow_regions() {
        // π/100 in d = 4: rejection needs thousands of trials; table wins.
        assert!(prefer_inverse_cdf(4, PI / 100.0, 4096));
        // A hemisphere in d = 2: rejection accepts half the time; rejection
        // wins over a 4096-entry table lookup.
        assert!(!prefer_inverse_cdf(2, FRAC_PI_2, 4096));
    }

    #[test]
    fn rejection_sampler_gives_up_gracefully() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut sampler = RejectionSampler::new(
            |r: &mut dyn rand::RngCore| crate::sphere::sample_orthant_direction(r, 2),
            |_: &[f64]| false,
        );
        assert!(sampler.sample_counted(&mut rng, 100).is_none());
    }
}
