//! Special functions backing the samplers and the confidence machinery.
//!
//! * [`inverse_normal_cdf`] / [`z_value`] — Acklam's rational approximation
//!   of `Φ⁻¹`, used for the `Z(1 − α/2)` factors of Eq. 10/11;
//! * [`ln_gamma`] — Lanczos approximation, used by sphere-area formulas
//!   (Eq. 12) and the beta function;
//! * [`regularized_incomplete_beta`] — `I_x(a, b)` via the Lentz continued
//!   fraction, realizing the closed-form cap CDF of Eq. 16;
//! * [`sin_power_integral`] — `∫₀^θ sinᵏ φ dφ` by the standard reduction
//!   formula, the quantity Algorithm 10 tabulates.

/// Acklam's rational approximation to the inverse of the standard normal
/// CDF. Absolute error below `1.15e-9` over the open unit interval.
///
/// # Panics
/// Panics unless `0 < p < 1`.
#[allow(clippy::excessive_precision)] // published Acklam constants, verbatim
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf: p must lie in (0, 1), got {p}"
    );

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided critical value `Z(1 − α/2)` for confidence level `1 − α`
/// (e.g. `alpha = 0.05` gives ≈ 1.96).
///
/// # Panics
/// Panics unless `0 < alpha < 1`.
pub fn z_value(alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "z_value: alpha must lie in (0, 1), got {alpha}"
    );
    inverse_normal_cdf(1.0 - alpha / 2.0)
}

/// Natural log of the gamma function (Lanczos, g = 7, 9 coefficients);
/// accurate to ~1e-13 for positive arguments.
#[allow(clippy::excessive_precision)] // published Lanczos coefficients, verbatim
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma: need x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The complete beta function `B(a, b)`.
pub fn beta(a: f64, b: f64) -> f64 {
    (ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)).exp()
}

/// The regularized incomplete beta function `I_x(a, b)`, computed with the
/// Lentz continued fraction (Numerical Recipes' `betacf`).
///
/// # Panics
/// Panics unless `0 ≤ x ≤ 1` and `a, b > 0`.
pub fn regularized_incomplete_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "I_x(a,b): x ∉ [0,1]: {x}");
    assert!(a > 0.0 && b > 0.0, "I_x(a,b): need a, b > 0");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    // The continued fraction converges fast for x < (a+1)/(a+b+2); apply
    // the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) directly otherwise (the
    // front factor is symmetric under (a, x) ↔ (b, 1−x)).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(x, a, b) / a
    } else {
        1.0 - front * beta_cf(1.0 - x, b, a) / b
    }
}

fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// `∫₀^θ sinᵏ φ dφ` for integer `k ≥ 0` and `θ ∈ [0, π]`, via the standard
/// reduction `I_k = (−sin^{k−1}θ cos θ + (k−1) I_{k−2}) / k`.
///
/// For the cap geometry of §5.2, `k = d − 2` and the ratio
/// `I(x) / I(θ)` is the polar-angle CDF of Eq. 14; the same quantity in
/// beta form (Eq. 16) is `½·B_{sin²x}((k+1)/2, ½)` — the tests check both
/// routes agree.
pub fn sin_power_integral(theta: f64, k: usize) -> f64 {
    assert!(
        (0.0..=std::f64::consts::PI + 1e-12).contains(&theta),
        "θ out of range: {theta}"
    );
    match k {
        0 => theta,
        1 => 1.0 - theta.cos(),
        _ => {
            let (s, c) = theta.sin_cos();
            let mut i_even = theta; // I_0
            let mut i_odd = 1.0 - c; // I_1
            let mut result = if k.is_multiple_of(2) { i_even } else { i_odd };
            for j in 2..=k {
                let prev = if j.is_multiple_of(2) { i_even } else { i_odd };
                let next = (-s.powi(j as i32 - 1) * c + (j as f64 - 1.0) * prev) / j as f64;
                if j.is_multiple_of(2) {
                    i_even = next;
                } else {
                    i_odd = next;
                }
                result = next;
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn inverse_normal_cdf_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.84134474) - 1.0).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn inverse_normal_cdf_tails() {
        assert!((inverse_normal_cdf(1e-6) + 4.753424).abs() < 1e-4);
        assert!((inverse_normal_cdf(1.0 - 1e-6) - 4.753424).abs() < 1e-4);
    }

    #[test]
    fn z_value_common_levels() {
        assert!((z_value(0.05) - 1.959964).abs() < 1e-5);
        assert!((z_value(0.01) - 2.575829).abs() < 1e-5);
        assert!((z_value(0.10) - 1.644854).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in (0, 1)")]
    fn z_value_rejects_bad_alpha() {
        z_value(1.5);
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n−1)!
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3628800.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn beta_symmetry_and_known_value() {
        assert!((beta(2.0, 3.0) - beta(3.0, 2.0)).abs() < 1e-12);
        // B(2,3) = 1!·2!/4! = 1/12.
        assert!((beta(2.0, 3.0) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(0.0, 2.0, 3.0), 0.0);
        assert_eq!(regularized_incomplete_beta(1.0, 2.0, 3.0), 1.0);
        let x = 0.37;
        let lhs = regularized_incomplete_beta(x, 2.5, 1.5);
        let rhs = 1.0 - regularized_incomplete_beta(1.0 - x, 1.5, 2.5);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.35, 0.62, 0.99] {
            assert!((regularized_incomplete_beta(x, 1.0, 1.0) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_half_half_is_arcsine() {
        // I_x(1/2, 1/2) = (2/π)·arcsin(√x).
        for x in [0.2f64, 0.5, 0.8] {
            let want = 2.0 / PI * x.sqrt().asin();
            let got = regularized_incomplete_beta(x, 0.5, 0.5);
            assert!((got - want).abs() < 1e-10, "x = {x}: {got} vs {want}");
        }
    }

    #[test]
    fn sin_power_integral_closed_forms() {
        // k = 0: θ. k = 1: 1 − cos θ. k = 2: θ/2 − sin(2θ)/4.
        let th = 0.9;
        assert!((sin_power_integral(th, 0) - th).abs() < 1e-14);
        assert!((sin_power_integral(th, 1) - (1.0 - th.cos())).abs() < 1e-14);
        let want2 = th / 2.0 - (2.0 * th).sin() / 4.0;
        assert!((sin_power_integral(th, 2) - want2).abs() < 1e-12);
        // k = 3: cos³θ/3 − cos θ + 2/3.
        let want3 = th.cos().powi(3) / 3.0 - th.cos() + 2.0 / 3.0;
        assert!((sin_power_integral(th, 3) - want3).abs() < 1e-12);
    }

    #[test]
    fn sin_power_integral_matches_beta_form() {
        // ∫₀^θ sinᵏ = ½ B_{sin²θ}((k+1)/2, ½) for θ ∈ [0, π/2]  (Li 2011).
        for k in 0..8 {
            for theta in [0.2, FRAC_PI_4, 1.1, FRAC_PI_2] {
                let direct = sin_power_integral(theta, k);
                let x = theta.sin().powi(2);
                let a = (k as f64 + 1.0) / 2.0;
                let via_beta = 0.5 * regularized_incomplete_beta(x, a, 0.5) * beta(a, 0.5);
                assert!(
                    (direct - via_beta).abs() < 1e-9,
                    "k={k}, θ={theta}: {direct} vs {via_beta}"
                );
            }
        }
    }

    #[test]
    fn sin_power_integral_matches_riemann_sum() {
        for k in [2usize, 4, 7] {
            let theta = 1.3;
            let steps = 200_000;
            let h = theta / steps as f64;
            let riemann: f64 = (0..steps)
                .map(|i| ((i as f64 + 0.5) * h).sin().powi(k as i32) * h)
                .sum();
            let exact = sin_power_integral(theta, k);
            assert!(
                (exact - riemann).abs() < 1e-8,
                "k={k}: {exact} vs {riemann}"
            );
        }
    }

    #[test]
    fn sin_power_integral_monotone_in_theta() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let v = sin_power_integral(i as f64 * FRAC_PI_2 / 10.0, 3);
            assert!(v > prev);
            prev = v;
        }
    }
}
