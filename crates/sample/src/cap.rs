//! Uniform sampling from a spherical cap — the inverse-CDF sampler of §5.2
//! (Algorithms 10 and 11).
//!
//! A region of interest "within angle θ of the ray ρ" is modeled as the
//! surface of the unit `d`-spherical cap of angle `θ` around the `d`-th
//! axis. A uniform point on the cap decomposes into
//!
//! 1. a polar angle `x ∈ [0, θ]` from the axis, distributed with CDF
//!    `F(x) = ∫₀ˣ sin^{d−2} φ dφ / ∫₀^θ sin^{d−2} φ dφ` (Eq. 14), drawn by
//!    inverse transform — closed form for `d = 2, 3` (Eq. 15), Riemann-sum
//!    table plus binary search otherwise (Algorithm 10);
//! 2. a uniform direction on the `(d−1)`-sphere of the cap's cross-section;
//! 3. a rotation taking the `d`-th axis onto `ρ` (Appendix A).

use crate::sphere::sample_sphere_direction;
use rand::Rng;
use srank_geom::matrix::Matrix;
use srank_geom::rotation::rotation_to_vector;
use srank_geom::vector::normalized;
use std::f64::consts::FRAC_PI_2;

/// Algorithm 10: the table of partial Riemann sums of `∫ sin^{d−2}` over a
/// regular partition of `[0, θ]`, normalized to a CDF.
#[derive(Clone, Debug)]
pub struct RiemannTable {
    step: f64,
    /// `cumulative[i] = F(i·step)`, so `cumulative[0] = 0` and
    /// `cumulative[partitions] = 1`.
    cumulative: Vec<f64>,
    /// Unnormalized `∫₀^θ sin^{d−2} φ dφ` (midpoint rule).
    total: f64,
}

impl RiemannTable {
    /// Builds the table for exponent `k = d − 2` with `partitions` cells.
    ///
    /// # Panics
    /// Panics unless `theta > 0` and `partitions ≥ 1`.
    pub fn new(theta: f64, k: usize, partitions: usize) -> Self {
        assert!(theta > 0.0, "RiemannTable: need θ > 0");
        assert!(partitions >= 1, "RiemannTable: need ≥ 1 partition");
        let step = theta / partitions as f64;
        let mut cumulative = Vec::with_capacity(partitions + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for i in 0..partitions {
            // Midpoint rule: more accurate than the paper's right-endpoint
            // sum at identical cost.
            let mid = (i as f64 + 0.5) * step;
            acc += mid.sin().powi(k as i32);
            cumulative.push(acc);
        }
        let total = acc * step;
        for v in &mut cumulative {
            *v /= acc;
        }
        Self {
            step,
            cumulative,
            total,
        }
    }

    /// The unnormalized integral `∫₀^θ sin^{d−2} φ dφ`, used by the §5.2
    /// cost model for choosing between inverse-CDF and rejection sampling.
    pub fn total_integral(&self) -> f64 {
        self.total
    }

    /// Number of partitions `γ`.
    pub fn partitions(&self) -> usize {
        self.cumulative.len() - 1
    }

    /// Inverse CDF: the angle `x` with `F(x) = y`, interpolating linearly
    /// inside the located partition (the fine-granularity assumption of
    /// Algorithm 11).
    ///
    /// # Panics
    /// Panics unless `0 ≤ y ≤ 1`.
    pub fn inverse_cdf(&self, y: f64) -> f64 {
        assert!((0.0..=1.0).contains(&y), "inverse_cdf: y ∉ [0,1]: {y}");
        // Binary search for the first index with cumulative ≥ y.
        let idx = self.cumulative.partition_point(|&c| c < y);
        if idx == 0 {
            return 0.0;
        }
        let lo = self.cumulative[idx - 1];
        let hi = self.cumulative[idx];
        let frac = if hi > lo { (y - lo) / (hi - lo) } else { 0.5 };
        ((idx - 1) as f64 + frac) * self.step
    }
}

/// How the polar angle is inverted.
#[derive(Clone, Debug)]
enum PolarAngleCdf {
    /// `d = 2`: `sin⁰ = 1`, so `F(x) = x/θ`.
    Uniform { theta: f64 },
    /// `d = 3`: Eq. 15, `F⁻¹(y) = arccos(1 − (1 − cos θ)·y)`.
    ClosedForm3 { one_minus_cos_theta: f64 },
    /// General `d`: Algorithm 10's table.
    Table(RiemannTable),
}

impl PolarAngleCdf {
    fn inverse(&self, y: f64) -> f64 {
        match self {
            PolarAngleCdf::Uniform { theta } => y * theta,
            PolarAngleCdf::ClosedForm3 {
                one_minus_cos_theta,
            } => (1.0 - one_minus_cos_theta * y).clamp(-1.0, 1.0).acos(),
            PolarAngleCdf::Table(t) => t.inverse_cdf(y),
        }
    }
}

/// Default number of Riemann partitions; the paper suggests `|L| = O(n)` to
/// keep lookups at `O(log n)` — 4096 keeps interpolation error far below
/// Monte-Carlo noise for every experiment in the evaluation.
pub const DEFAULT_PARTITIONS: usize = 4096;

/// Algorithm 11: a uniform sampler on the spherical cap of angle `theta`
/// around an arbitrary reference ray.
#[derive(Clone, Debug)]
pub struct CapSampler {
    dim: usize,
    theta: f64,
    ray: Vec<f64>,
    rotation: Matrix,
    cdf: PolarAngleCdf,
}

impl CapSampler {
    /// Builds a sampler around `ray` (any non-zero vector; normalized
    /// internally) with maximum polar angle `theta`.
    ///
    /// Closed-form inverse CDFs are used for `d = 2, 3`; higher dimensions
    /// build a [`RiemannTable`] with [`DEFAULT_PARTITIONS`] cells.
    ///
    /// # Panics
    /// Panics if `ray` is zero, `ray.len() < 2`, or `theta ∉ (0, π/2]`.
    pub fn new(ray: &[f64], theta: f64) -> Self {
        Self::with_partitions(ray, theta, DEFAULT_PARTITIONS)
    }

    /// [`CapSampler::new`] with an explicit table size (only relevant for
    /// `d ≥ 4`).
    pub fn with_partitions(ray: &[f64], theta: f64, partitions: usize) -> Self {
        let dim = ray.len();
        assert!(dim >= 2, "CapSampler: need d ≥ 2");
        assert!(
            theta > 0.0 && theta <= FRAC_PI_2 + 1e-12,
            "CapSampler: need θ ∈ (0, π/2], got {theta}"
        );
        let unit = normalized(ray).expect("CapSampler: reference ray must be non-zero");
        let rotation = rotation_to_vector(&unit).expect("non-zero ray has a rotation");
        let cdf = match dim {
            2 => PolarAngleCdf::Uniform { theta },
            3 => PolarAngleCdf::ClosedForm3 {
                one_minus_cos_theta: 1.0 - theta.cos(),
            },
            _ => PolarAngleCdf::Table(RiemannTable::new(theta, dim - 2, partitions)),
        };
        Self {
            dim,
            theta,
            ray: unit,
            rotation,
            cdf,
        }
    }

    /// Forces the Riemann-table path even for `d = 2, 3`; used to validate
    /// the numeric route against the closed forms.
    pub fn with_forced_table(ray: &[f64], theta: f64, partitions: usize) -> Self {
        let mut s = Self::with_partitions(ray, theta, partitions);
        s.cdf = PolarAngleCdf::Table(RiemannTable::new(theta, s.dim - 2, partitions));
        s
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The (unit) reference ray.
    pub fn ray(&self) -> &[f64] {
        &self.ray
    }

    /// Serializes the sampler for durable storage. The already-normalized
    /// ray and the rotation matrix are stored *exactly* rather than
    /// re-derived on load — re-normalizing an almost-unit vector can move
    /// its last bit, and a persisted sampler must replay the identical
    /// sample stream. The polar-angle CDF is recorded as its table size
    /// (`0` = the `d ∈ {2, 3}` closed form) and rebuilt deterministically.
    pub fn to_value(&self) -> serde_json::Value {
        use crate::persist::{f64_slice_value, obj};
        let partitions = match &self.cdf {
            PolarAngleCdf::Uniform { .. } | PolarAngleCdf::ClosedForm3 { .. } => 0,
            PolarAngleCdf::Table(t) => t.partitions(),
        };
        let mut rotation = Vec::with_capacity(self.dim * self.dim);
        for i in 0..self.dim {
            rotation.extend_from_slice(self.rotation.row(i));
        }
        obj([
            ("theta", serde_json::Value::Number(self.theta)),
            ("ray", f64_slice_value(&self.ray)),
            ("rotation", f64_slice_value(&rotation)),
            ("partitions", serde_json::Value::Number(partitions as f64)),
        ])
    }

    /// Rebuilds a sampler serialized by [`to_value`](Self::to_value).
    pub fn from_value(v: &serde_json::Value) -> crate::persist::PersistResult<Self> {
        use crate::persist::{f64_field, f64_vec_field, usize_field, PersistError};
        let theta = f64_field(v, "theta")?;
        let ray = f64_vec_field(v, "ray")?;
        let rotation = f64_vec_field(v, "rotation")?;
        let partitions = usize_field(v, "partitions")?;
        let dim = ray.len();
        if dim < 2 {
            return Err(PersistError::new("cap sampler needs d ≥ 2"));
        }
        if !(theta > 0.0 && theta <= FRAC_PI_2 + 1e-12) {
            return Err(PersistError::new(format!("cap θ out of range: {theta}")));
        }
        if rotation.len() != dim * dim {
            return Err(PersistError::new(format!(
                "cap rotation has {} entries, expected {dim}×{dim}",
                rotation.len()
            )));
        }
        let cdf = match (partitions, dim) {
            (0, 2) => PolarAngleCdf::Uniform { theta },
            (0, 3) => PolarAngleCdf::ClosedForm3 {
                one_minus_cos_theta: 1.0 - theta.cos(),
            },
            (0, _) => {
                return Err(PersistError::new(
                    "cap sampler in d ≥ 4 needs a Riemann table size",
                ))
            }
            (p, d) => PolarAngleCdf::Table(RiemannTable::new(theta, d - 2, p)),
        };
        Ok(Self {
            dim,
            theta,
            ray,
            rotation: Matrix::from_rows(dim, dim, rotation),
            cdf,
        })
    }

    /// One uniform sample from the cap (a unit vector within `theta` of the
    /// reference ray). Coordinates may be slightly negative when the cap
    /// leaks out of the first orthant — see `roi` for orthant clipping.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let x = self.cdf.inverse(rng.random::<f64>());
        let (sin_x, cos_x) = x.sin_cos();
        let mut p = vec![0.0; self.dim];
        if self.dim == 2 {
            // The 0-sphere: the cross-section is the two points ±1.
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            p[0] = sign * sin_x;
        } else {
            let s = sample_sphere_direction(rng, self.dim - 1);
            for (pi, si) in p[..self.dim - 1].iter_mut().zip(&s) {
                *pi = sin_x * si;
            }
        }
        p[self.dim - 1] = cos_x;
        self.rotation.mul_vec(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::sin_power_integral;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srank_geom::vector::{angle_between, norm};
    use std::f64::consts::{FRAC_PI_3, FRAC_PI_4, FRAC_PI_6, PI};

    #[test]
    fn riemann_table_cdf_endpoints() {
        let t = RiemannTable::new(1.0, 2, 512);
        assert_eq!(t.inverse_cdf(0.0), 0.0);
        assert!((t.inverse_cdf(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn riemann_table_matches_exact_integral() {
        for k in [0usize, 1, 2, 3, 5] {
            let theta = 1.2;
            let t = RiemannTable::new(theta, k, 8192);
            let exact = sin_power_integral(theta, k);
            assert!(
                (t.total_integral() - exact).abs() < 1e-6,
                "k={k}: {} vs {exact}",
                t.total_integral()
            );
        }
    }

    #[test]
    fn riemann_inverse_cdf_matches_closed_form_d3() {
        // d = 3 ⇒ k = 1 ⇒ F(x) = (1 − cos x)/(1 − cos θ).
        let theta = FRAC_PI_3;
        let t = RiemannTable::new(theta, 1, 8192);
        for y in [0.05, 0.13, 0.5, 0.77, 0.95] {
            let want = (1.0 - (1.0 - theta.cos()) * y).acos();
            let got = t.inverse_cdf(y);
            assert!((got - want).abs() < 1e-4, "y={y}: {got} vs {want}");
        }
    }

    #[test]
    fn riemann_inverse_is_monotone() {
        let t = RiemannTable::new(0.9, 3, 1024);
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = t.inverse_cdf(i as f64 / 100.0);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn samples_are_unit_and_within_theta() {
        let mut rng = StdRng::seed_from_u64(10);
        for (ray, theta) in [
            (vec![1.0, 1.0], FRAC_PI_6),
            (vec![1.0, 1.0, 1.0], PI / 20.0),
            (vec![1.0, 0.5, 0.3, 0.2], PI / 100.0),
            (vec![0.3, 0.9, 0.2, 0.5, 0.4], PI / 10.0),
        ] {
            let sampler = CapSampler::new(&ray, theta);
            for _ in 0..300 {
                let w = sampler.sample(&mut rng);
                assert!((norm(&w) - 1.0).abs() < 1e-9);
                let a = angle_between(&w, &ray).unwrap();
                assert!(a <= theta + 1e-9, "angle {a} exceeds θ = {theta}");
            }
        }
    }

    /// Empirical polar-angle CDF must match Eq. 14 — the defining property
    /// of the inverse-CDF sampler. Checked for d = 3 (closed form) and
    /// d = 5 (Riemann table).
    #[test]
    fn polar_angle_distribution_matches_analytic_cdf() {
        let mut rng = StdRng::seed_from_u64(11);
        for (d, theta) in [(3usize, FRAC_PI_4), (5, FRAC_PI_6)] {
            let ray = vec![1.0; d];
            let sampler = CapSampler::new(&ray, theta);
            let n = 20_000;
            let mut angles: Vec<f64> = (0..n)
                .map(|_| angle_between(&sampler.sample(&mut rng), &ray).unwrap())
                .collect();
            angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let denom = sin_power_integral(theta, d - 2);
            let mut max_dev = 0.0f64;
            for (i, &x) in angles.iter().enumerate() {
                let empirical = (i + 1) as f64 / n as f64;
                let analytic = sin_power_integral(x.min(theta), d - 2) / denom;
                max_dev = max_dev.max((empirical - analytic).abs());
            }
            // Kolmogorov–Smirnov 99.9% critical value ≈ 1.95/√n ≈ 0.0138.
            assert!(max_dev < 0.02, "d={d}: KS deviation {max_dev}");
        }
    }

    #[test]
    fn forced_table_agrees_with_closed_form_distribution() {
        let mut rng1 = StdRng::seed_from_u64(12);
        let mut rng2 = StdRng::seed_from_u64(12);
        let ray = vec![1.0, 2.0, 2.0];
        let theta = FRAC_PI_6;
        let closed = CapSampler::new(&ray, theta);
        let table = CapSampler::with_forced_table(&ray, theta, 8192);
        // Same seed ⇒ same uniforms ⇒ nearly identical polar angles.
        for _ in 0..200 {
            let a = angle_between(&closed.sample(&mut rng1), &ray).unwrap();
            let b = angle_between(&table.sample(&mut rng2), &ray).unwrap();
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn two_d_cap_is_uniform_arc() {
        let mut rng = StdRng::seed_from_u64(13);
        let ray = [1.0, 1.0];
        let theta = FRAC_PI_6;
        let sampler = CapSampler::new(&ray, theta);
        let n = 30_000;
        let mut signed: Vec<f64> = (0..n)
            .map(|_| {
                let w = sampler.sample(&mut rng);
                w[1].atan2(w[0]) - FRAC_PI_4
            })
            .collect();
        signed.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Uniform on [−θ, θ]: mean ≈ 0, and quartiles at ±θ/2.
        let mean: f64 = signed.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01);
        let q1 = signed[n / 4];
        let q3 = signed[3 * n / 4];
        assert!((q1 + theta / 2.0).abs() < 0.01, "q1 = {q1}");
        assert!((q3 - theta / 2.0).abs() < 0.01, "q3 = {q3}");
    }

    #[test]
    fn mean_direction_is_the_ray() {
        let mut rng = StdRng::seed_from_u64(14);
        let ray = vec![1.0, 0.5, 0.3, 0.2];
        let unit = srank_geom::vector::normalized(&ray).unwrap();
        let sampler = CapSampler::new(&ray, PI / 20.0);
        let n = 10_000;
        let mut mean = vec![0.0; 4];
        for _ in 0..n {
            let w = sampler.sample(&mut rng);
            for (m, x) in mean.iter_mut().zip(&w) {
                *m += x / n as f64;
            }
        }
        let mean_unit = srank_geom::vector::normalized(&mean).unwrap();
        assert!(
            srank_geom::vector::linf_distance(&mean_unit, &unit) < 0.01,
            "{mean_unit:?} vs {unit:?}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let sampler = CapSampler::new(&[1.0, 1.0, 1.0], FRAC_PI_6);
        let a: Vec<Vec<f64>> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..5).map(|_| sampler.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..5).map(|_| sampler.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "θ ∈ (0, π/2]")]
    fn rejects_bad_theta() {
        CapSampler::new(&[1.0, 1.0], 2.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_ray() {
        CapSampler::new(&[0.0, 0.0], 0.3);
    }
}
