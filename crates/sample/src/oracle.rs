//! The Monte-Carlo stability oracle (Algorithm 12, §5.3).
//!
//! Given a ranking region `R` — an intersection of half-spaces — and a set
//! `S` of functions drawn uniformly from the region of interest `U*`, the
//! stability of `R` in `U*` is estimated as the fraction of samples that
//! satisfy every half-space: `count / |S|`, at cost `O(|R|·|S|)`.

use crate::store::SampleBuffer;
use srank_geom::region::ConeRegion;

/// Algorithm 12: fraction of `samples` inside the region.
pub fn estimate_stability(region: &ConeRegion, samples: &SampleBuffer) -> f64 {
    assert_eq!(region.dim(), samples.dim(), "oracle: dimension mismatch");
    if samples.is_empty() {
        return 0.0;
    }
    let count = count_inside(region, samples, 0, samples.len());
    count as f64 / samples.len() as f64
}

/// Number of samples with index in `[lo, hi)` inside the region.
///
/// The half-space loop breaks on the first violation, mirroring the early
/// exit in the paper's pseudocode.
pub fn count_inside(region: &ConeRegion, samples: &SampleBuffer, lo: usize, hi: usize) -> usize {
    let mut count = 0;
    for i in lo..hi {
        let w = samples.row(i);
        if region.halfspaces().iter().all(|h| h.slack(w) > 0.0) {
            count += 1;
        }
    }
    count
}

/// Multi-threaded [`estimate_stability`] for the million-sample
/// configurations of Figure 12. Results are exact (not approximate) with
/// respect to the sequential version: each sample is tested independently,
/// so the split is embarrassingly parallel.
pub fn estimate_stability_parallel(
    region: &ConeRegion,
    samples: &SampleBuffer,
    threads: usize,
) -> f64 {
    assert_eq!(region.dim(), samples.dim(), "oracle: dimension mismatch");
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return estimate_stability(region, samples);
    }
    let chunk = n.div_ceil(threads);
    let total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || count_inside(region, samples, lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("oracle worker panicked"))
            .sum()
    });
    total as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::sample_orthant_direction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srank_geom::hyperplane::HalfSpace;

    fn orthant_samples(seed: u64, n: usize, d: usize) -> SampleBuffer {
        let mut rng = StdRng::seed_from_u64(seed);
        SampleBuffer::generate(&mut rng, n, |r| sample_orthant_direction(r, d))
    }

    #[test]
    fn unconstrained_region_has_stability_one() {
        let samples = orthant_samples(1, 1000, 3);
        assert_eq!(estimate_stability(&ConeRegion::full(3), &samples), 1.0);
    }

    #[test]
    fn empty_sample_set_yields_zero() {
        let samples = SampleBuffer::new(3);
        assert_eq!(estimate_stability(&ConeRegion::full(3), &samples), 0.0);
    }

    /// In 2D, the region {w₁ > w₂} occupies exactly half the arc measure of
    /// the quadrant; the estimate must land near 0.5.
    #[test]
    fn half_plane_region_in_2d() {
        let samples = orthant_samples(2, 50_000, 2);
        let region = ConeRegion::from_halfspaces(2, vec![HalfSpace::new(vec![1.0, -1.0])]);
        let s = estimate_stability(&region, &samples);
        assert!((s - 0.5).abs() < 0.01, "s = {s}");
    }

    /// In 3D, {w₁ > w₂ > w₃} is one of 3! = 6 symmetric orderings of the
    /// coordinates, so its stability in the orthant is 1/6.
    #[test]
    fn coordinate_ordering_region_in_3d() {
        let samples = orthant_samples(3, 60_000, 3);
        let region = ConeRegion::from_halfspaces(
            3,
            vec![
                HalfSpace::new(vec![1.0, -1.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0, -1.0]),
            ],
        );
        let s = estimate_stability(&region, &samples);
        assert!((s - 1.0 / 6.0).abs() < 0.01, "s = {s}");
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let samples = orthant_samples(4, 10_001, 3);
        let region = ConeRegion::from_halfspaces(
            3,
            vec![
                HalfSpace::new(vec![1.0, -0.5, -0.2]),
                HalfSpace::new(vec![-0.1, 1.0, -0.4]),
            ],
        );
        let seq = estimate_stability(&region, &samples);
        for threads in [1, 2, 3, 7, 16] {
            let par = estimate_stability_parallel(&region, &samples, threads);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn disjoint_regions_partition_the_mass() {
        let samples = orthant_samples(5, 40_000, 2);
        let above = ConeRegion::from_halfspaces(2, vec![HalfSpace::new(vec![-1.0, 1.0])]);
        let below = ConeRegion::from_halfspaces(2, vec![HalfSpace::new(vec![1.0, -1.0])]);
        let total = estimate_stability(&above, &samples) + estimate_stability(&below, &samples);
        // The boundary has measure zero; the two halves must sum to ≈ 1.
        assert!((total - 1.0).abs() < 1e-3, "total = {total}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn oracle_checks_dimensions() {
        let samples = orthant_samples(6, 10, 3);
        estimate_stability(&ConeRegion::full(2), &samples);
    }
}
