//! Unbiased scoring-function sampling and Monte-Carlo stability estimation.
//!
//! This crate implements §5 of *On Obtaining Stable Rankings* (Asudeh et
//! al., VLDB 2018):
//!
//! * [`normal`] — standard-normal deviates (Marsaglia polar method); the
//!   building block of every sphere sampler, hand-rolled so the workspace
//!   needs no distribution crate;
//! * [`special`] — the special functions the samplers and confidence
//!   machinery lean on: inverse normal CDF (Acklam), `ln Γ`, the
//!   regularized incomplete beta function (Eq. 16), and `∫ sinᵏ`;
//! * [`sphere`] — Algorithm 9's uniform sampler on the first orthant of the
//!   unit `d`-sphere, plus the *biased* naive angle sampler of Figure 3
//!   kept around for demonstration and tests;
//! * [`cap`] — the spherical-cap inverse-CDF sampler (Algorithms 10/11)
//!   with closed forms for `d = 2, 3` (Eq. 15) and the Riemann-sum table
//!   for general `d`;
//! * [`roi`] — regions of interest `U*` (§2.2.2): the full orthant, a cone
//!   around a reference ray, or an arbitrary half-space constraint set;
//! * [`rejection`] — acceptance–rejection sampling and the §5.2 cost-model
//!   crossover between rejection and inverse-CDF sampling;
//! * [`store`] — a flat, cache-friendly buffer of sampled weight vectors;
//! * [`oracle`] — the stability oracle of Algorithm 12 (sequential and
//!   multi-threaded);
//! * [`partition`] — the §5.4 in-place sample partitioning that gives the
//!   lazy arrangement constructor O(1) stability reads;
//! * [`confidence`] — Bernoulli confidence intervals (Eq. 10), required
//!   sample counts (Eq. 11), and the geometric-distribution discovery-cost
//!   model of Theorem 2;
//! * [`persist`] — the shared JSON-value serialization vocabulary (typed
//!   decode errors, exact `f64`/`u64` codecs) behind the durable state
//!   snapshots of `srank-core` and `srank-service`.

pub mod cap;
pub mod confidence;
pub mod normal;
pub mod oracle;
pub mod partition;
pub mod persist;
pub mod rejection;
pub mod roi;
pub mod special;
pub mod sphere;
pub mod store;

pub use cap::CapSampler;
pub use confidence::{
    confidence_error, expected_samples_to_observe, required_samples, ConfidenceInterval,
};
pub use normal::NormalSampler;
pub use oracle::{estimate_stability, estimate_stability_parallel};
pub use partition::PartitionedSamples;
pub use rejection::RejectionSampler;
pub use roi::{RegionOfInterest, RoiSampler};
pub use sphere::{sample_angles_naive, sample_orthant_direction, sample_sphere_direction};
pub use store::SampleBuffer;
