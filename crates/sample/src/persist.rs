//! Building blocks for durable state serialization.
//!
//! Every detachable state this workspace persists (sample buffers, ROI
//! samplers, enumerator snapshots in `srank-core`, engine caches in
//! `srank-service`) serializes through the `serde_json` [`Value`] tree.
//! This module holds the shared vocabulary: a typed error, field
//! accessors that name what was missing or mistyped, and exact codecs
//! for the two primitive shapes JSON cannot carry natively —
//!
//! * **`f64` slices** ride as plain JSON numbers: the writer prints the
//!   shortest decimal that round-trips (Rust's `{}` float formatting)
//!   and the reader parses with `str::parse::<f64>`, so every finite
//!   float survives byte-for-byte. Non-finite floats would not (JSON has
//!   no NaN/Inf) — states never contain them.
//! * **full-width `u64` words** (RNG state, checksums) ride as fixed
//!   16-digit hex strings, because the shimmed JSON number is an `f64`
//!   and would silently round anything above 2⁵³.

use serde_json::Value;

/// A persistence decode error: what field, what went wrong. Loaders are
/// corruption-tolerant — they surface this error to a caller that logs
/// and skips, never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistError(pub String);

impl PersistError {
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "persist: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

pub type PersistResult<T> = Result<T, PersistError>;

/// Object field lookup that names the missing key in its error.
pub fn field<'a>(v: &'a Value, key: &str) -> PersistResult<&'a Value> {
    v.get(key)
        .ok_or_else(|| PersistError::new(format!("missing field '{key}'")))
}

pub fn str_field<'a>(v: &'a Value, key: &str) -> PersistResult<&'a str> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| PersistError::new(format!("field '{key}' must be a string")))
}

pub fn u64_field(v: &Value, key: &str) -> PersistResult<u64> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| PersistError::new(format!("field '{key}' must be a non-negative integer")))
}

pub fn usize_field(v: &Value, key: &str) -> PersistResult<usize> {
    Ok(u64_field(v, key)? as usize)
}

pub fn f64_field(v: &Value, key: &str) -> PersistResult<f64> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| PersistError::new(format!("field '{key}' must be a number")))
}

pub fn bool_field(v: &Value, key: &str) -> PersistResult<bool> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| PersistError::new(format!("field '{key}' must be a boolean")))
}

pub fn array_field<'a>(v: &'a Value, key: &str) -> PersistResult<&'a [Value]> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| PersistError::new(format!("field '{key}' must be an array")))
}

/// Decodes an array field of finite numbers.
pub fn f64_vec_field(v: &Value, key: &str) -> PersistResult<Vec<f64>> {
    f64_vec_value(field(v, key)?, key)
}

/// Decodes an array value of numbers (`what` names it in errors).
pub fn f64_vec_value(v: &Value, what: &str) -> PersistResult<Vec<f64>> {
    v.as_array()
        .ok_or_else(|| PersistError::new(format!("'{what}' must be an array")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| PersistError::new(format!("'{what}' must hold numbers")))
        })
        .collect()
}

/// Decodes an array field of `u32` values.
pub fn u32_vec_field(v: &Value, key: &str) -> PersistResult<Vec<u32>> {
    u32_vec_value(field(v, key)?, key)
}

/// Decodes an array value of `u32` values (`what` names it in errors).
pub fn u32_vec_value(v: &Value, what: &str) -> PersistResult<Vec<u32>> {
    v.as_array()
        .ok_or_else(|| PersistError::new(format!("'{what}' must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .filter(|&n| n <= u64::from(u32::MAX))
                .map(|n| n as u32)
                .ok_or_else(|| PersistError::new(format!("'{what}' must hold u32 values")))
        })
        .collect()
}

/// Decodes an array field of `u64` counters (plain JSON numbers — exact
/// up to 2⁵³, far beyond any observation counter in this workspace).
pub fn u64_vec_field(v: &Value, key: &str) -> PersistResult<Vec<u64>> {
    array_field(v, key)?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| PersistError::new(format!("'{key}' must hold u64 values")))
        })
        .collect()
}

/// Encodes an `f64` slice as a JSON array (exact; see module docs).
pub fn f64_slice_value(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::Number(x)).collect())
}

/// Encodes a `u32` slice as a JSON array (every `u32` is exact in `f64`).
pub fn u32_slice_value(xs: &[u32]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::Number(f64::from(x))).collect())
}

/// Encodes a full-width `u64` as a fixed 16-digit hex string (exact;
/// plain JSON numbers round past 2⁵³).
pub fn u64_hex_value(x: u64) -> Value {
    Value::String(format!("{x:016x}"))
}

/// Decodes a [`u64_hex_value`] field.
pub fn u64_hex_field(v: &Value, key: &str) -> PersistResult<u64> {
    u64_hex(field(v, key)?, key)
}

/// Decodes a bare [`u64_hex_value`] (`what` names it in errors).
pub fn u64_hex(v: &Value, what: &str) -> PersistResult<u64> {
    let s = v
        .as_str()
        .ok_or_else(|| PersistError::new(format!("'{what}' must be a hex string")))?;
    u64::from_str_radix(s, 16)
        .map_err(|_| PersistError::new(format!("'{what}' must be a 16-digit hex word")))
}

/// Builds a JSON object from `(key, value)` pairs (insertion order kept).
pub fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_words_round_trip_at_full_width() {
        for x in [0u64, 1, u64::MAX, 0x9e37_79b9_7f4a_7c15, (1 << 53) + 1] {
            let v = obj([("w", u64_hex_value(x))]);
            assert_eq!(u64_hex_field(&v, "w").unwrap(), x);
        }
    }

    #[test]
    fn floats_round_trip_through_json_text() {
        let xs = vec![
            0.1 + 0.2,
            std::f64::consts::PI,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -1_234.567_891_234_567_9e-200,
        ];
        let text = serde_json::to_string(&f64_slice_value(&xs)).unwrap();
        let back = serde_json::from_str(&text).unwrap();
        let decoded = f64_vec_field(&obj([("x", back)]), "x").unwrap();
        for (a, b) in xs.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} reparsed as {b}");
        }
    }

    #[test]
    fn errors_name_the_field() {
        let v = obj([("a", Value::Bool(true))]);
        assert!(field(&v, "b").unwrap_err().to_string().contains("'b'"));
        assert!(u64_field(&v, "a").unwrap_err().to_string().contains("'a'"));
    }
}
