//! Flat storage for sampled weight vectors.
//!
//! The Monte-Carlo oracle and the §5.4 partitioning both stream over large
//! sample sets (up to 10⁶ in Figure 12), so samples live in one contiguous
//! row-major buffer rather than a `Vec<Vec<f64>>` of tiny allocations.

use rand::Rng;

/// A dense `n × dim` row-major buffer of weight vectors.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleBuffer {
    dim: usize,
    data: Vec<f64>,
}

impl SampleBuffer {
    /// An empty buffer for vectors of the given dimension.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "SampleBuffer: need dim ≥ 1");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// An empty buffer with space reserved for `n` rows.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim >= 1, "SampleBuffer: need dim ≥ 1");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Fills a buffer with `n` draws from a sampling closure.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        mut sampler: impl FnMut(&mut R) -> Vec<f64>,
    ) -> Self {
        let mut first = sampler(rng);
        let dim = first.len();
        let mut buf = Self::with_capacity(dim, n);
        if n == 0 {
            return Self::new(dim.max(1));
        }
        buf.data.append(&mut first);
        for _ in 1..n {
            let w = sampler(rng);
            buf.push(&w);
        }
        buf
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn push(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.dim, "SampleBuffer::push: dimension mismatch");
        self.data.extend_from_slice(w);
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Swaps rows `i` and `j` in place (used by the §5.4 partitioning).
    pub fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let d = self.dim;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (left, right) = self.data.split_at_mut(hi * d);
        left[lo * d..(lo + 1) * d].swap_with_slice(&mut right[..d]);
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Serializes the buffer for durable storage (exact: every finite
    /// float survives the JSON text byte-for-byte).
    pub fn to_value(&self) -> serde_json::Value {
        crate::persist::obj([
            ("dim", serde_json::Value::Number(self.dim as f64)),
            ("data", crate::persist::f64_slice_value(&self.data)),
        ])
    }

    /// Rebuilds a buffer serialized by [`to_value`](Self::to_value).
    pub fn from_value(v: &serde_json::Value) -> crate::persist::PersistResult<Self> {
        use crate::persist::{f64_vec_field, usize_field, PersistError};
        let dim = usize_field(v, "dim")?;
        let data = f64_vec_field(v, "data")?;
        if dim == 0 || data.len() % dim != 0 {
            return Err(PersistError::new(format!(
                "sample buffer of {} values is not a whole number of dim-{dim} rows",
                data.len()
            )));
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(PersistError::new("sample buffer holds non-finite values"));
        }
        Ok(Self { dim, data })
    }

    /// The component-wise mean of rows in `[lo, hi)`; `None` for an empty
    /// range. Used to pick "a function in the region" from the samples a
    /// region owns.
    pub fn mean_of_range(&self, lo: usize, hi: usize) -> Option<Vec<f64>> {
        if lo >= hi || hi > self.len() {
            return None;
        }
        let mut mean = vec![0.0; self.dim];
        for i in lo..hi {
            for (m, x) in mean.iter_mut().zip(self.row(i)) {
                *m += x;
            }
        }
        let count = (hi - lo) as f64;
        for m in &mut mean {
            *m /= count;
        }
        Some(mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_and_access() {
        let mut b = SampleBuffer::new(3);
        b.push(&[1.0, 2.0, 3.0]);
        b.push(&[4.0, 5.0, 6.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(b.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_checks_dimension() {
        SampleBuffer::new(2).push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut b = SampleBuffer::new(2);
        b.push(&[1.0, 1.0]);
        b.push(&[2.0, 2.0]);
        b.push(&[3.0, 3.0]);
        b.swap_rows(0, 2);
        assert_eq!(b.row(0), &[3.0, 3.0]);
        assert_eq!(b.row(2), &[1.0, 1.0]);
        b.swap_rows(1, 1); // no-op
        assert_eq!(b.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn generate_uses_the_closure() {
        let mut rng = StdRng::seed_from_u64(0);
        let b =
            SampleBuffer::generate(&mut rng, 10, |r| vec![r.random::<f64>(), r.random::<f64>()]);
        assert_eq!(b.len(), 10);
        assert_eq!(b.dim(), 2);
        assert!(b
            .iter_rows()
            .all(|r| r.iter().all(|&x| (0.0..1.0).contains(&x))));
    }

    #[test]
    fn mean_of_range() {
        let mut b = SampleBuffer::new(2);
        b.push(&[0.0, 2.0]);
        b.push(&[2.0, 4.0]);
        b.push(&[100.0, 100.0]);
        let m = b.mean_of_range(0, 2).unwrap();
        assert_eq!(m, vec![1.0, 3.0]);
        assert!(b.mean_of_range(2, 2).is_none());
        assert!(b.mean_of_range(0, 99).is_none());
    }

    #[test]
    fn iter_rows_matches_indexing() {
        let mut b = SampleBuffer::new(1);
        for i in 0..5 {
            b.push(&[i as f64]);
        }
        let collected: Vec<f64> = b.iter_rows().map(|r| r[0]).collect();
        assert_eq!(collected, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
