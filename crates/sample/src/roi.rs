//! Regions of interest `U*` (§2.2.2) and their uniform samplers.
//!
//! The producer constrains acceptable scoring functions either by a
//! *cone* — "within angle θ (cosine similarity cos θ) of a reference
//! vector" — or by a *constraint set* of linear inequalities over the
//! weights, implicitly intersected with the first orthant. `U* = U` (the
//! whole orthant) is the degenerate case used by the consumer problems.

use crate::cap::CapSampler;
use crate::sphere::sample_orthant_direction;
use crate::store::SampleBuffer;
use rand::Rng;
use srank_geom::hyperplane::HalfSpace;
use srank_geom::vector::{angle_between, in_first_orthant, normalized};
use srank_geom::EPS;
use std::f64::consts::FRAC_PI_2;

/// Cap on rejection-loop iterations before concluding the region is
/// (numerically) empty. At the paper's narrowest region of interest
/// (θ = π/100 in d = 5) the orthant-proposal acceptance rate stays far
/// above `1/REJECTION_LIMIT`.
const REJECTION_LIMIT: usize = 20_000_000;

/// A region of interest in the space of scoring functions.
#[derive(Clone, Debug)]
pub enum RegionOfInterest {
    /// All of `U`: the first orthant of the unit sphere.
    FullOrthant { dim: usize },
    /// Functions within angle `theta` of (the direction of) `ray`.
    ///
    /// Following the paper, the cap is *not* clipped to the first orthant
    /// unless `clip_to_orthant` is set: a cap around an interior reference
    /// vector with small θ stays inside the orthant anyway, and clipping
    /// changes the normalizing volume.
    Cone {
        ray: Vec<f64>,
        theta: f64,
        clip_to_orthant: bool,
    },
    /// Functions in the first orthant satisfying every half-space
    /// constraint, e.g. `w₂ ≤ w₁` as `HalfSpace::new(vec![1, −1])`.
    ///
    /// Closed constraints are accepted up to [`srank_geom::EPS`]; the
    /// boundary has measure zero, so this does not bias sampling.
    Constraints {
        dim: usize,
        halfspaces: Vec<HalfSpace>,
    },
}

impl RegionOfInterest {
    /// The whole universe `U` of scoring functions in `R^d`.
    pub fn full(dim: usize) -> Self {
        assert!(dim >= 2, "RegionOfInterest: need d ≥ 2");
        RegionOfInterest::FullOrthant { dim }
    }

    /// The cone of functions within `theta` radians of `ray`.
    ///
    /// # Panics
    /// Panics if `ray` is zero or shorter than 2, or `theta ∉ (0, π/2]`.
    pub fn cone(ray: &[f64], theta: f64) -> Self {
        assert!(ray.len() >= 2, "RegionOfInterest: need d ≥ 2");
        assert!(
            theta > 0.0 && theta <= FRAC_PI_2 + 1e-12,
            "RegionOfInterest: need θ ∈ (0, π/2], got {theta}"
        );
        let unit = normalized(ray).expect("RegionOfInterest: reference ray must be non-zero");
        RegionOfInterest::Cone {
            ray: unit,
            theta,
            clip_to_orthant: false,
        }
    }

    /// The cone of functions with at least `cos_sim` cosine similarity to
    /// `ray` — the paper's "0.998 cosine similarity" phrasing.
    ///
    /// # Panics
    /// Panics unless `0 ≤ cos_sim < 1` (and `ray` is a valid reference).
    pub fn cone_cosine(ray: &[f64], cos_sim: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&cos_sim),
            "RegionOfInterest: need cosine similarity in [0, 1), got {cos_sim}"
        );
        Self::cone(ray, cos_sim.acos())
    }

    /// Restricts a cone to the first orthant (rejection against `w ≥ 0`).
    pub fn clipped_to_orthant(self) -> Self {
        match self {
            RegionOfInterest::Cone { ray, theta, .. } => RegionOfInterest::Cone {
                ray,
                theta,
                clip_to_orthant: true,
            },
            other => other,
        }
    }

    /// A constraint-set region: first orthant ∩ all half-spaces.
    pub fn constraints(dim: usize, halfspaces: Vec<HalfSpace>) -> Self {
        assert!(dim >= 2, "RegionOfInterest: need d ≥ 2");
        for h in &halfspaces {
            assert_eq!(
                h.dim(),
                dim,
                "RegionOfInterest: half-space dimension mismatch"
            );
        }
        RegionOfInterest::Constraints { dim, halfspaces }
    }

    /// Dimension of the weight space.
    pub fn dim(&self) -> usize {
        match self {
            RegionOfInterest::FullOrthant { dim } => *dim,
            RegionOfInterest::Cone { ray, .. } => ray.len(),
            RegionOfInterest::Constraints { dim, .. } => *dim,
        }
    }

    /// Membership test (direction-based; `w` need not be normalized).
    pub fn contains(&self, w: &[f64]) -> bool {
        match self {
            RegionOfInterest::FullOrthant { .. } => in_first_orthant(w, EPS),
            RegionOfInterest::Cone {
                ray,
                theta,
                clip_to_orthant,
            } => {
                let inside_cap = match angle_between(w, ray) {
                    Some(a) => a <= *theta + EPS,
                    None => false,
                };
                inside_cap && (!clip_to_orthant || in_first_orthant(w, EPS))
            }
            RegionOfInterest::Constraints { halfspaces, .. } => {
                in_first_orthant(w, EPS) && halfspaces.iter().all(|h| h.slack(w) >= -EPS)
            }
        }
    }

    /// Builds the uniform sampler for this region (§5.1–5.2): direct
    /// orthant sampling for `U`, inverse-CDF cap sampling for cones, and
    /// acceptance–rejection with an orthant proposal for constraint sets.
    pub fn sampler(&self) -> RoiSampler {
        match self {
            RegionOfInterest::FullOrthant { dim } => RoiSampler::Orthant { dim: *dim },
            RegionOfInterest::Cone {
                ray,
                theta,
                clip_to_orthant,
            } => RoiSampler::Cap {
                cap: CapSampler::new(ray, *theta),
                clip_to_orthant: *clip_to_orthant,
            },
            RegionOfInterest::Constraints { dim, halfspaces } => RoiSampler::Rejection {
                dim: *dim,
                halfspaces: halfspaces.clone(),
            },
        }
    }
}

/// A uniform sampler over a [`RegionOfInterest`].
#[derive(Clone, Debug)]
pub enum RoiSampler {
    Orthant {
        dim: usize,
    },
    Cap {
        cap: CapSampler,
        clip_to_orthant: bool,
    },
    Rejection {
        dim: usize,
        halfspaces: Vec<HalfSpace>,
    },
}

impl RoiSampler {
    /// Serializes the sampler for durable storage (a tagged union over
    /// the three sampling strategies; exact — see `persist` module docs).
    pub fn to_value(&self) -> serde_json::Value {
        use crate::persist::{f64_slice_value, obj};
        use serde_json::Value;
        match self {
            RoiSampler::Orthant { dim } => obj([
                ("kind", Value::String("orthant".into())),
                ("dim", Value::Number(*dim as f64)),
            ]),
            RoiSampler::Cap {
                cap,
                clip_to_orthant,
            } => obj([
                ("kind", Value::String("cap".into())),
                ("cap", cap.to_value()),
                ("clip_to_orthant", Value::Bool(*clip_to_orthant)),
            ]),
            RoiSampler::Rejection { dim, halfspaces } => obj([
                ("kind", Value::String("rejection".into())),
                ("dim", Value::Number(*dim as f64)),
                (
                    "halfspaces",
                    Value::Array(
                        halfspaces
                            .iter()
                            .map(|h| f64_slice_value(h.coeffs()))
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Rebuilds a sampler serialized by [`to_value`](Self::to_value).
    pub fn from_value(v: &serde_json::Value) -> crate::persist::PersistResult<Self> {
        use crate::persist::{
            array_field, bool_field, field, str_field, usize_field, PersistError,
        };
        match str_field(v, "kind")? {
            "orthant" => {
                let dim = usize_field(v, "dim")?;
                if dim < 2 {
                    return Err(PersistError::new("orthant sampler needs d ≥ 2"));
                }
                Ok(RoiSampler::Orthant { dim })
            }
            "cap" => Ok(RoiSampler::Cap {
                cap: CapSampler::from_value(field(v, "cap")?)?,
                clip_to_orthant: bool_field(v, "clip_to_orthant")?,
            }),
            "rejection" => {
                let dim = usize_field(v, "dim")?;
                if dim < 2 {
                    return Err(PersistError::new("rejection sampler needs d ≥ 2"));
                }
                let halfspaces = array_field(v, "halfspaces")?
                    .iter()
                    .map(|h| {
                        let coeffs: Vec<f64> = h
                            .as_array()
                            .ok_or_else(|| PersistError::new("half-space must be an array"))?
                            .iter()
                            .map(|x| {
                                x.as_f64().ok_or_else(|| {
                                    PersistError::new("half-space coefficients must be numbers")
                                })
                            })
                            .collect::<crate::persist::PersistResult<_>>()?;
                        if coeffs.len() != dim {
                            return Err(PersistError::new(format!(
                                "half-space has {} coefficients, sampler is d = {dim}",
                                coeffs.len()
                            )));
                        }
                        Ok(HalfSpace::new(coeffs))
                    })
                    .collect::<crate::persist::PersistResult<_>>()?;
                Ok(RoiSampler::Rejection { dim, halfspaces })
            }
            other => Err(PersistError::new(format!("unknown sampler kind '{other}'"))),
        }
    }

    /// One uniform sample.
    ///
    /// # Panics
    /// Panics if `REJECTION_LIMIT` (20M) proposals are rejected in a row (the
    /// region is empty or vanishingly small); use
    /// [`try_sample`](Self::try_sample) for graceful handling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.try_sample(rng, REJECTION_LIMIT).expect(
            "RoiSampler: rejection limit exhausted — empty or degenerate region of interest",
        )
    }

    /// One uniform sample into a caller-provided buffer — the
    /// zero-allocation form for sampling hot loops. The orthant sampler
    /// fills `out` in place; the cap and rejection samplers currently fall
    /// back to the allocating path (their draws are dominated by rotation
    /// / rejection work, not the allocation). Consumes the RNG exactly
    /// like [`sample`](Self::sample), so streams are interchangeable.
    ///
    /// # Panics
    /// As [`sample`](Self::sample), if the rejection limit is exhausted.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<f64>) {
        match self {
            RoiSampler::Orthant { dim } => {
                crate::sphere::sample_orthant_direction_into(rng, *dim, out)
            }
            _ => *out = self.sample(rng),
        }
    }

    /// One uniform sample, giving up after `max_trials` rejected proposals.
    pub fn try_sample<R: Rng + ?Sized>(&self, rng: &mut R, max_trials: usize) -> Option<Vec<f64>> {
        match self {
            RoiSampler::Orthant { dim } => Some(sample_orthant_direction(rng, *dim)),
            RoiSampler::Cap {
                cap,
                clip_to_orthant,
            } => {
                if !clip_to_orthant {
                    return Some(cap.sample(rng));
                }
                for _ in 0..max_trials {
                    let w = cap.sample(rng);
                    if in_first_orthant(&w, EPS) {
                        return Some(w);
                    }
                }
                None
            }
            RoiSampler::Rejection { dim, halfspaces } => {
                for _ in 0..max_trials {
                    let w = sample_orthant_direction(rng, *dim);
                    if halfspaces.iter().all(|h| h.slack(&w) >= -EPS) {
                        return Some(w);
                    }
                }
                None
            }
        }
    }

    /// Draws `n` samples into a [`SampleBuffer`].
    pub fn sample_buffer<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> SampleBuffer {
        SampleBuffer::generate(rng, n, |r| self.sample(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srank_geom::vector::norm;
    use std::f64::consts::{FRAC_PI_4, PI};

    #[test]
    fn full_orthant_contains_only_nonnegative() {
        let u = RegionOfInterest::full(3);
        assert!(u.contains(&[0.5, 0.2, 0.3]));
        assert!(!u.contains(&[0.5, -0.2, 0.3]));
    }

    #[test]
    fn cone_membership_by_angle() {
        let roi = RegionOfInterest::cone(&[1.0, 1.0], PI / 10.0);
        assert!(roi.contains(&[1.0, 1.0]));
        assert!(roi.contains(&[1.0, 1.2])); // ~5.2° away
        assert!(!roi.contains(&[1.0, 0.0])); // 45° away
    }

    #[test]
    fn cone_cosine_matches_angle_spec() {
        // The paper: π/10 angle distance ⇔ 95.1% cosine similarity.
        let by_angle = RegionOfInterest::cone(&[1.0, 1.0], PI / 10.0);
        let by_cos = RegionOfInterest::cone_cosine(&[1.0, 1.0], (PI / 10.0).cos());
        let w = [0.8, 1.0];
        assert_eq!(by_angle.contains(&w), by_cos.contains(&w));
        if let RegionOfInterest::Cone { theta, .. } = by_cos {
            assert!((theta - PI / 10.0).abs() < 1e-12);
        } else {
            panic!("expected cone");
        }
    }

    #[test]
    fn constraint_region_from_paper_example() {
        // §3.2's U₁*: {w₁ ≤ w₂, 2w₁ ≥ w₂}. The paper quotes the angle
        // range loosely as [π/4, π/3]; the exact upper edge is arctan 2.
        let roi = RegionOfInterest::constraints(
            2,
            vec![
                HalfSpace::new(vec![-1.0, 1.0]), // w₂ ≥ w₁
                HalfSpace::new(vec![2.0, -1.0]), // 2w₁ ≥ w₂
            ],
        );
        let upper = 2.0f64.atan();
        let at = |t: f64| [t.cos(), t.sin()];
        assert!(roi.contains(&at(FRAC_PI_4 + 0.01)));
        assert!(roi.contains(&at(upper - 0.01)));
        assert!(!roi.contains(&at(FRAC_PI_4 - 0.05)));
        assert!(!roi.contains(&at(upper + 0.05)));
    }

    #[test]
    fn samples_fall_inside_their_region() {
        let mut rng = StdRng::seed_from_u64(21);
        let regions = [
            RegionOfInterest::full(4),
            RegionOfInterest::cone(&[1.0, 0.5, 0.3, 0.2], PI / 100.0),
            RegionOfInterest::constraints(4, vec![HalfSpace::new(vec![1.0, -1.0, 0.0, 0.0])]),
        ];
        for roi in &regions {
            let sampler = roi.sampler();
            for _ in 0..200 {
                let w = sampler.sample(&mut rng);
                assert!(roi.contains(&w), "{w:?} escaped {roi:?}");
                assert!((norm(&w) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn clipped_cone_stays_in_orthant() {
        let mut rng = StdRng::seed_from_u64(22);
        // Wide cap around an edge ray leaks outside the orthant; clipping
        // must remove the leak.
        let roi = RegionOfInterest::cone(&[1.0, 0.05], PI / 8.0).clipped_to_orthant();
        let sampler = roi.sampler();
        for _ in 0..300 {
            let w = sampler.sample(&mut rng);
            assert!(w.iter().all(|&x| x >= -EPS));
        }
    }

    #[test]
    fn unclipped_edge_cone_does_leak() {
        // Documents the paper-faithful behaviour the clip flag exists for.
        let mut rng = StdRng::seed_from_u64(23);
        let roi = RegionOfInterest::cone(&[1.0, 0.05], PI / 8.0);
        let sampler = roi.sampler();
        let leaked = (0..300).any(|_| sampler.sample(&mut rng).iter().any(|&x| x < 0.0));
        assert!(leaked, "expected some samples outside the orthant");
    }

    #[test]
    fn rejection_sampler_respects_constraints() {
        let mut rng = StdRng::seed_from_u64(24);
        let roi = RegionOfInterest::constraints(
            3,
            vec![
                HalfSpace::new(vec![1.0, -1.0, 0.0]),
                HalfSpace::new(vec![0.0, 1.0, -1.0]),
            ],
        );
        let sampler = roi.sampler();
        for _ in 0..200 {
            let w = sampler.sample(&mut rng);
            assert!(w[0] >= w[1] - 1e-9 && w[1] >= w[2] - 1e-9, "{w:?}");
        }
    }

    #[test]
    fn try_sample_gives_up_on_empty_region() {
        let mut rng = StdRng::seed_from_u64(25);
        let roi = RegionOfInterest::constraints(
            2,
            vec![
                HalfSpace::new(vec![1.0, -1.0]),
                HalfSpace::new(vec![-1.0, 1.0]),
            ],
        );
        // Only the diagonal w₁ = w₂ satisfies both (within EPS); rejection
        // from the continuous proposal finds it with probability ~0... but
        // EPS slack makes a hairline band, so use strictly opposed
        // constraints instead:
        let empty = RegionOfInterest::constraints(
            2,
            vec![
                HalfSpace::new(vec![1.0, -1.0]),
                HalfSpace::new(vec![-1.0, 0.9]),
            ],
        );
        // w₁ ≥ w₂ and 0.9·w₂ ≥ w₁ ⇒ w₁ = w₂ = 0 — unreachable on the sphere.
        assert!(empty.sampler().try_sample(&mut rng, 10_000).is_none());
        // The hairline band however might occasionally succeed; only check
        // that it does not panic within a small budget.
        let _ = roi.sampler().try_sample(&mut rng, 1000);
    }

    #[test]
    fn sample_buffer_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(26);
        let buf = RegionOfInterest::full(3)
            .sampler()
            .sample_buffer(&mut rng, 500);
        assert_eq!(buf.len(), 500);
        assert_eq!(buf.dim(), 3);
    }

    #[test]
    #[should_panic(expected = "cosine similarity")]
    fn cone_cosine_validates_input() {
        RegionOfInterest::cone_cosine(&[1.0, 1.0], 1.5);
    }
}
