//! In-place sample partitioning for lazy arrangement construction (§5.4).
//!
//! The key trick of the paper's `GET-NEXTmd`: keep all `U*` samples in one
//! array; every region of the growing arrangement owns a contiguous range
//! `[sb, se)` of it. Splitting a region by a hyperplane quick-sort
//! partitions its range in place, which simultaneously
//!
//! * answers `passThrough` (the hyperplane crosses the region iff both
//!   sides of the split are non-empty), and
//! * re-establishes the ownership invariant so each child's stability is
//!   the O(1) quantity `(se − sb) / |S|`.

use crate::store::SampleBuffer;
use srank_geom::hyperplane::OrderingExchange;

/// A sample buffer with quick-sort-style range partitioning.
#[derive(Clone, Debug)]
pub struct PartitionedSamples {
    buf: SampleBuffer,
}

/// Result of splitting a range by a hyperplane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Split {
    /// First index of the positive-side block; rows `[lo, split)` lie on
    /// the negative side, rows `[split, hi)` on the positive side.
    pub split: usize,
}

impl PartitionedSamples {
    pub fn new(buf: SampleBuffer) -> Self {
        Self { buf }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.buf.dim()
    }

    /// Read access to the underlying buffer.
    pub fn buffer(&self) -> &SampleBuffer {
        &self.buf
    }

    /// Serializes the partitioned buffer for durable storage. The row
    /// *order* is the partition structure (every region owns a contiguous
    /// range), so the buffer is stored verbatim, mid-refinement order and
    /// all.
    pub fn to_value(&self) -> serde_json::Value {
        self.buf.to_value()
    }

    /// Rebuilds a buffer serialized by [`to_value`](Self::to_value).
    pub fn from_value(v: &serde_json::Value) -> crate::persist::PersistResult<Self> {
        Ok(Self {
            buf: SampleBuffer::from_value(v)?,
        })
    }

    /// Partitions rows `[lo, hi)` by the hyperplane: after the call, rows
    /// with `coeffs·w ≤ 0` precede rows with `coeffs·w > 0`, and the
    /// returned split index separates the blocks.
    ///
    /// Samples exactly on the hyperplane (a measure-zero event) go to the
    /// negative block; the arrangement treats region boundaries as
    /// belonging to neither open region, so their placement cannot bias
    /// any stability estimate by more than the sampling error itself.
    ///
    /// # Panics
    /// Panics if `hi > len` or `lo > hi`.
    pub fn partition(&mut self, lo: usize, hi: usize, hp: &OrderingExchange) -> Split {
        assert!(
            lo <= hi && hi <= self.len(),
            "partition: bad range [{lo}, {hi})"
        );
        let mut i = lo;
        let mut j = hi;
        while i < j {
            if hp.eval(self.buf.row(i)) <= 0.0 {
                i += 1;
            } else {
                j -= 1;
                self.buf.swap_rows(i, j);
            }
        }
        Split { split: i }
    }

    /// The paper's `passThrough` via samples: `true` when the hyperplane
    /// has witnesses on both sides within `[lo, hi)` (without reordering).
    pub fn crosses(&self, lo: usize, hi: usize, hp: &OrderingExchange) -> bool {
        let mut saw_neg = false;
        let mut saw_pos = false;
        for i in lo..hi {
            if hp.eval(self.buf.row(i)) <= 0.0 {
                saw_neg = true;
            } else {
                saw_pos = true;
            }
            if saw_neg && saw_pos {
                return true;
            }
        }
        false
    }

    /// O(1) stability of a region owning `[lo, hi)`: `(hi − lo) / |S|`.
    pub fn stability_of_range(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi <= self.len());
        if self.is_empty() {
            return 0.0;
        }
        (hi - lo) as f64 / self.len() as f64
    }

    /// A representative function for the region owning `[lo, hi)`: the
    /// centroid of its samples (which lies in the region by convexity).
    pub fn representative(&self, lo: usize, hi: usize) -> Option<Vec<f64>> {
        self.buf.mean_of_range(lo, hi)
    }

    /// Row access, forwarded from the buffer.
    pub fn row(&self, i: usize) -> &[f64] {
        self.buf.row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::sample_orthant_direction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(seed: u64, n: usize, d: usize) -> PartitionedSamples {
        let mut rng = StdRng::seed_from_u64(seed);
        PartitionedSamples::new(SampleBuffer::generate(&mut rng, n, |r| {
            sample_orthant_direction(r, d)
        }))
    }

    #[test]
    fn partition_separates_sides() {
        let mut ps = samples(1, 1000, 3);
        let hp = OrderingExchange::from_coeffs(vec![1.0, -1.0, 0.0]);
        let Split { split } = ps.partition(0, 1000, &hp);
        for i in 0..split {
            assert!(hp.eval(ps.row(i)) <= 0.0, "row {i} on wrong side");
        }
        for i in split..1000 {
            assert!(hp.eval(ps.row(i)) > 0.0, "row {i} on wrong side");
        }
        // Both sides populated for this symmetric hyperplane.
        assert!(split > 300 && split < 700, "split = {split}");
    }

    #[test]
    fn partition_preserves_multiset() {
        let mut ps = samples(2, 200, 2);
        let mut before: Vec<(u64, u64)> = ps
            .buffer()
            .iter_rows()
            .map(|r| (r[0].to_bits(), r[1].to_bits()))
            .collect();
        before.sort_unstable();
        ps.partition(0, 200, &OrderingExchange::from_coeffs(vec![1.0, -2.0]));
        let mut after: Vec<(u64, u64)> = ps
            .buffer()
            .iter_rows()
            .map(|r| (r[0].to_bits(), r[1].to_bits()))
            .collect();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn nested_partitions_stay_consistent() {
        // Split by h1, then split the positive block by h2: the three
        // resulting blocks must each satisfy their defining constraints.
        let mut ps = samples(3, 2000, 3);
        let h1 = OrderingExchange::from_coeffs(vec![1.0, -1.0, 0.0]);
        let h2 = OrderingExchange::from_coeffs(vec![0.0, 1.0, -1.0]);
        let s1 = ps.partition(0, 2000, &h1).split;
        let s2 = ps.partition(s1, 2000, &h2).split;
        for i in 0..s1 {
            assert!(h1.eval(ps.row(i)) <= 0.0);
        }
        for i in s1..s2 {
            assert!(h1.eval(ps.row(i)) > 0.0);
            assert!(h2.eval(ps.row(i)) <= 0.0);
        }
        for i in s2..2000 {
            assert!(h1.eval(ps.row(i)) > 0.0);
            assert!(h2.eval(ps.row(i)) > 0.0);
        }
    }

    #[test]
    fn crosses_detects_straddling_hyperplane() {
        let ps = samples(4, 500, 2);
        let diagonal = OrderingExchange::from_coeffs(vec![1.0, -1.0]);
        assert!(ps.crosses(0, 500, &diagonal));
        // A hyperplane entirely below the orthant never crosses.
        let outside = OrderingExchange::from_coeffs(vec![1.0, 1.0]);
        assert!(!ps.crosses(0, 500, &outside));
    }

    #[test]
    fn crosses_after_partition_respects_blocks() {
        let mut ps = samples(5, 1000, 2);
        let diagonal = OrderingExchange::from_coeffs(vec![1.0, -1.0]);
        let Split { split } = ps.partition(0, 1000, &diagonal);
        // Within either block the same hyperplane no longer crosses.
        assert!(!ps.crosses(0, split, &diagonal));
        assert!(!ps.crosses(split, 1000, &diagonal));
    }

    #[test]
    fn stability_of_range_is_count_ratio() {
        let ps = samples(6, 400, 2);
        assert_eq!(ps.stability_of_range(0, 400), 1.0);
        assert_eq!(ps.stability_of_range(100, 300), 0.5);
        assert_eq!(ps.stability_of_range(7, 7), 0.0);
    }

    #[test]
    fn representative_lies_in_partitioned_region() {
        let mut ps = samples(7, 1000, 3);
        let hp = OrderingExchange::from_coeffs(vec![1.0, -1.0, 0.0]);
        let Split { split } = ps.partition(0, 1000, &hp);
        let rep_neg = ps.representative(0, split).unwrap();
        let rep_pos = ps.representative(split, 1000).unwrap();
        assert!(hp.eval(&rep_neg) <= 0.0);
        assert!(hp.eval(&rep_pos) > 0.0);
    }

    #[test]
    fn empty_range_has_no_representative() {
        let ps = samples(8, 10, 2);
        assert!(ps.representative(5, 5).is_none());
    }

    #[test]
    fn partition_matches_oracle_counts() {
        // The count on the positive side must equal Algorithm 12's count
        // for the single-half-space region.
        use srank_geom::hyperplane::HalfSpace;
        use srank_geom::region::ConeRegion;
        let mut ps = samples(9, 3000, 3);
        let coeffs = vec![0.3, -0.9, 0.4];
        let hp = OrderingExchange::from_coeffs(coeffs.clone());
        let region = ConeRegion::from_halfspaces(3, vec![HalfSpace::new(coeffs)]);
        let oracle_count = crate::oracle::count_inside(&region, ps.buffer(), 0, ps.len());
        let Split { split } = ps.partition(0, 3000, &hp);
        assert_eq!(3000 - split, oracle_count);
    }
}
