//! Bernoulli confidence machinery (§4.4–§4.5).
//!
//! Stability estimation treats each sampled function as a Bernoulli trial
//! ("did it generate ranking `r`?"). The central limit theorem then gives
//! the confidence error of Eq. 10, the required-sample-count inversion of
//! Eq. 11, and Theorem 2's geometric-distribution model of how many samples
//! it takes to *discover* a ranking at all.

use crate::special::z_value;

/// A symmetric confidence interval `estimate ± error` at confidence level
/// `1 − alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate (a sample mean `m_r`).
    pub estimate: f64,
    /// The half-width `e` of Eq. 10.
    pub error: f64,
    /// The significance level `α` (e.g. 0.05 for 95% confidence).
    pub alpha: f64,
}

impl ConfidenceInterval {
    /// Builds the Eq. 10 interval for a Bernoulli mean estimated from
    /// `n` samples at significance `alpha`.
    pub fn bernoulli(estimate: f64, n: usize, alpha: f64) -> Self {
        Self {
            estimate,
            error: confidence_error(estimate, n, alpha),
            alpha,
        }
    }

    pub fn lower(&self) -> f64 {
        self.estimate - self.error
    }

    pub fn upper(&self) -> f64 {
        self.estimate + self.error
    }

    /// Whether `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower() && value <= self.upper()
    }
}

/// Eq. 10: the confidence error `e = Z(1 − α/2) · √(m(1 − m)/N)` of a
/// Bernoulli mean `m` estimated from `n` samples.
///
/// Returns 0 for `n = 0` inputs only in the degenerate `m ∈ {0, 1}` case;
/// otherwise `n = 0` is rejected.
///
/// # Panics
/// Panics if `m ∉ [0, 1]`, `alpha ∉ (0, 1)`, or `n == 0` with `0 < m < 1`.
pub fn confidence_error(m: f64, n: usize, alpha: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&m),
        "confidence_error: mean out of [0,1]: {m}"
    );
    let var = m * (1.0 - m);
    if var == 0.0 {
        return 0.0;
    }
    assert!(n > 0, "confidence_error: need at least one sample");
    z_value(alpha) * (var / n as f64).sqrt()
}

/// Eq. 11: the expected number of samples needed to pin a Bernoulli mean
/// `p` down to half-width `e` at significance `alpha`:
/// `N = p(1 − p)·(Z(1 − α/2)/e)²` (rounded up).
///
/// # Panics
/// Panics if `e ≤ 0`.
pub fn required_samples(p: f64, alpha: f64, e: f64) -> usize {
    assert!(e > 0.0, "required_samples: need e > 0");
    assert!(
        (0.0..=1.0).contains(&p),
        "required_samples: p out of [0,1]: {p}"
    );
    let z = z_value(alpha);
    (p * (1.0 - p) * (z / e).powi(2)).ceil() as usize
}

/// Theorem 2: the expected number of uniform samples before a ranking of
/// stability `s` is observed for the first time (geometric distribution):
/// `1/s`.
///
/// # Panics
/// Panics unless `0 < s ≤ 1`.
pub fn expected_samples_to_observe(s: f64) -> f64 {
    assert!(
        s > 0.0 && s <= 1.0,
        "expected_samples_to_observe: s ∉ (0,1]: {s}"
    );
    1.0 / s
}

/// Theorem 2: the variance of the first-observation sample count,
/// `(1 − s)/s²`.
///
/// # Panics
/// Panics unless `0 < s ≤ 1`.
pub fn variance_samples_to_observe(s: f64) -> f64 {
    assert!(
        s > 0.0 && s <= 1.0,
        "variance_samples_to_observe: s ∉ (0,1]: {s}"
    );
    (1.0 - s) / (s * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn error_shrinks_with_sample_count() {
        let e100 = confidence_error(0.3, 100, 0.05);
        let e10000 = confidence_error(0.3, 10_000, 0.05);
        assert!(e100 > e10000);
        // √100 scaling.
        assert!((e100 / e10000 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn error_is_maximal_at_half() {
        let at_half = confidence_error(0.5, 1000, 0.05);
        for m in [0.1, 0.3, 0.7, 0.95] {
            assert!(confidence_error(m, 1000, 0.05) < at_half);
        }
    }

    #[test]
    fn degenerate_means_have_zero_error() {
        assert_eq!(confidence_error(0.0, 100, 0.05), 0.0);
        assert_eq!(confidence_error(1.0, 100, 0.05), 0.0);
        // Even with n = 0, by the variance short-circuit.
        assert_eq!(confidence_error(0.0, 0, 0.05), 0.0);
    }

    #[test]
    fn known_error_value() {
        // m = 0.5, n = 10000, 95%: e = 1.96·√(0.25/10⁴) ≈ 0.0098.
        let e = confidence_error(0.5, 10_000, 0.05);
        assert!((e - 0.0098).abs() < 1e-4, "e = {e}");
    }

    #[test]
    fn required_samples_inverts_confidence_error() {
        let p = 0.2;
        let alpha = 0.05;
        let e = 0.01;
        let n = required_samples(p, alpha, e);
        // With n samples the achieved error is ≤ e; with n−1 it exceeds it.
        assert!(confidence_error(p, n, alpha) <= e + 1e-12);
        assert!(confidence_error(p, n - 1, alpha) > e);
    }

    #[test]
    fn interval_bounds_and_membership() {
        let ci = ConfidenceInterval::bernoulli(0.4, 2500, 0.05);
        assert!(ci.contains(0.4));
        assert!(ci.contains(ci.lower()) && ci.contains(ci.upper()));
        assert!(!ci.contains(ci.upper() + 1e-9));
        assert!((ci.upper() - ci.lower() - 2.0 * ci.error).abs() < 1e-15);
    }

    #[test]
    fn theorem2_moments() {
        assert_eq!(expected_samples_to_observe(0.5), 2.0);
        assert_eq!(expected_samples_to_observe(0.01), 100.0);
        assert_eq!(variance_samples_to_observe(1.0), 0.0);
        assert!((variance_samples_to_observe(0.1) - 0.9 / 0.01).abs() < 1e-12);
    }

    /// Empirical check of Theorem 2: simulate geometric waiting times.
    #[test]
    fn theorem2_matches_simulation() {
        let mut rng = StdRng::seed_from_u64(40);
        let s = 0.05;
        let rounds = 20_000;
        let mut total = 0u64;
        for _ in 0..rounds {
            let mut trials = 1u64;
            while rng.random::<f64>() >= s {
                trials += 1;
            }
            total += trials;
        }
        let mean = total as f64 / rounds as f64;
        let expected = expected_samples_to_observe(s);
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "{mean} vs {expected}"
        );
    }

    /// The CI of Eq. 10 must actually cover the true mean at roughly the
    /// nominal rate.
    #[test]
    fn coverage_is_close_to_nominal() {
        let mut rng = StdRng::seed_from_u64(41);
        let p_true = 0.3;
        let n = 1000;
        let rounds = 2000;
        let mut covered = 0;
        for _ in 0..rounds {
            let hits = (0..n).filter(|_| rng.random::<f64>() < p_true).count();
            let m = hits as f64 / n as f64;
            if ConfidenceInterval::bernoulli(m, n, 0.05).contains(p_true) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / rounds as f64;
        assert!((coverage - 0.95).abs() < 0.02, "coverage = {coverage}");
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn zero_samples_rejected_for_interior_mean() {
        confidence_error(0.5, 0, 0.05);
    }
}
