//! Shared harness for reproducing the paper's evaluation (§6).
//!
//! Every experiment gets its workload from here so that the criterion
//! benches and the `figures` binary measure exactly the same data under
//! exactly the same fixed seeds. EXPERIMENTS.md records how each figure's
//! output compares to the paper.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use srank_core::Dataset;
use srank_data::{bluenile, csmetrics_top100, dot, fifa_top100, synthetic, CorrelationKind};

/// Fixed seeds — one per workload family — so that every bench and figure
/// is reproducible run-to-run.
pub mod seeds {
    pub const CSMETRICS: u64 = 2018;
    pub const FIFA: u64 = 1904;
    pub const BLUENILE: u64 = 43;
    pub const DOT: u64 = 1322;
    pub const SYNTHETIC: u64 = 23;
    pub const SAMPLER: u64 = 5;
}

/// The simulated CSMetrics top-100 slice (d = 2), normalized.
pub fn csmetrics_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(seeds::CSMETRICS);
    let table = csmetrics_top100(&mut rng);
    Dataset::from_rows(&table.normalized()).expect("simulator output is valid")
}

/// The simulated FIFA top-100 slice (d = 4), normalized.
pub fn fifa_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(seeds::FIFA);
    let table = fifa_top100(&mut rng);
    Dataset::from_rows(&table.normalized()).expect("simulator output is valid")
}

/// A Blue Nile catalog of `n` diamonds projected to the first `d` of its
/// five attributes, normalized — the paper's device for varying n and d.
pub fn bluenile_dataset(n: usize, d: usize) -> Dataset {
    assert!((2..=5).contains(&d), "Blue Nile has 5 attributes");
    let mut rng = StdRng::seed_from_u64(seeds::BLUENILE);
    let table = bluenile(&mut rng, n);
    let cols: Vec<usize> = (0..d).collect();
    Dataset::from_rows(&table.project(&cols).normalized()).expect("simulator output is valid")
}

/// A DoT flight table of `n` records (d = 3), normalized.
pub fn dot_dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seeds::DOT);
    let table = dot(&mut rng, n);
    Dataset::from_rows(&table.normalized()).expect("simulator output is valid")
}

/// A synthetic dataset of the given correlation kind (Figure 21).
pub fn synthetic_dataset(kind: CorrelationKind, n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seeds::SYNTHETIC);
    let table = synthetic(&mut rng, kind, n, d);
    Dataset::from_rows(&table.normalized()).expect("simulator output is valid")
}

/// One (x, y) series of a figure, serializable for downstream plotting.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    pub label: String,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }
}

/// A reproduced figure: id, caption, axis names, and its series.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    pub id: String,
    pub caption: String,
    pub x_axis: String,
    pub y_axis: String,
    pub series: Vec<Series>,
    /// Free-form notes (e.g. measured scalar statistics).
    pub notes: Vec<String>,
}

impl Figure {
    pub fn new(
        id: impl Into<String>,
        caption: impl Into<String>,
        x_axis: impl Into<String>,
        y_axis: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            caption: caption.into(),
            x_axis: x_axis.into(),
            y_axis: y_axis.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the figure as an aligned text table (one column per
    /// series), the `figures` binary's human-readable output.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "=== {} — {} ===", self.id, self.caption).unwrap();
        for n in &self.notes {
            writeln!(out, "  note: {n}").unwrap();
        }
        if self.series.is_empty() {
            return out;
        }
        write!(out, "{:>14}", self.x_axis).unwrap();
        for s in &self.series {
            write!(out, "{:>22}", s.label).unwrap();
        }
        writeln!(out).unwrap();
        let rows = self.series.iter().map(|s| s.x.len()).max().unwrap_or(0);
        for i in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.x.get(i))
                .copied()
                .unwrap_or(f64::NAN);
            write!(out, "{x:>14.6}").unwrap();
            for s in &self.series {
                match s.y.get(i) {
                    Some(y) => write!(out, "{y:>22.8}").unwrap(),
                    None => write!(out, "{:>22}", "-").unwrap(),
                }
            }
            writeln!(out).unwrap();
        }
        writeln!(out, "  (y axis: {})", self.y_axis).unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_have_paper_shapes() {
        let cs = csmetrics_dataset();
        assert_eq!((cs.len(), cs.dim()), (100, 2));
        let ff = fifa_dataset();
        assert_eq!((ff.len(), ff.dim()), (100, 4));
        let bn = bluenile_dataset(500, 3);
        assert_eq!((bn.len(), bn.dim()), (500, 3));
        let dt = dot_dataset(1000);
        assert_eq!((dt.len(), dt.dim()), (1000, 3));
        let sy = synthetic_dataset(CorrelationKind::Independent, 200, 3);
        assert_eq!((sy.len(), sy.dim()), (200, 3));
    }

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(csmetrics_dataset(), csmetrics_dataset());
        assert_eq!(bluenile_dataset(100, 4), bluenile_dataset(100, 4));
    }

    #[test]
    fn figure_renders_aligned_table() {
        let mut f = Figure::new("fig0", "test figure", "n", "time");
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        s.push(10.0, 20.0);
        f.series.push(s);
        f.note("hello");
        let text = f.render_text();
        assert!(text.contains("fig0"));
        assert!(text.contains("hello"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn figure_serializes_to_json() {
        let f = Figure::new("fig1", "c", "x", "y");
        let json = serde_json::to_string(&f).unwrap();
        assert!(json.contains("\"id\":\"fig1\""));
    }
}
