//! Regenerates every figure of the paper's evaluation (§6) plus the
//! sampler-validation figures of §5, printing each as a text table and
//! optionally dumping JSON for plotting.
//!
//! Usage:
//!   figures [--quick] [--full] [--json DIR] [fig3 fig4 ... fig21 | all]
//!
//! `--quick` shrinks the biggest workloads (CI-friendly); `--full` runs
//! paper-scale sizes everywhere (slow: the n = 10⁴ arrangement of Figure 13
//! and the 100K-item sweep of Figure 11 take minutes, exactly as the
//! paper's own measurements did). The default is a middle ground that
//! preserves every curve's shape. EXPERIMENTS.md records paper-vs-measured
//! numbers per figure.

use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::{
    bluenile_dataset, csmetrics_dataset, dot_dataset, fifa_dataset, seeds, synthetic_dataset,
    Figure, Series,
};
use srank_core::prelude::*;
use srank_core::Region2DInfo;
use srank_data::CorrelationKind;
use srank_sample::cap::CapSampler;
use srank_sample::special::sin_power_integral;
use srank_sample::sphere::{sample_angles_naive, sample_orthant_direction};
use std::f64::consts::PI;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Quick,
    Default,
    Full,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut json_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--json" => json_dir = it.next(),
            "all" => wanted.clear(),
            other if other.starts_with("fig") => wanted.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: figures [--quick|--full] [--json DIR] [fig3 ... fig21 | all]");
                std::process::exit(2);
            }
        }
    }

    type Gen = fn(Scale) -> Figure;
    let catalog: Vec<(&str, Gen)> = vec![
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
        ("fig19", fig19),
        ("fig20", fig20),
        ("fig21", fig21),
    ];

    for (id, gen) in &catalog {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let started = Instant::now();
        let fig = gen(scale);
        print!("{}", fig.render_text());
        println!("  (generated in {:.2?})\n", started.elapsed());
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{id}.json");
            std::fs::write(&path, serde_json::to_string_pretty(&fig).unwrap()).expect("write json");
        }
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

// ---------------------------------------------------------------------------
// §5 sampler-validation figures
// ---------------------------------------------------------------------------

/// Per-coordinate means + argmax-cell χ² of a point cloud on the orthant
/// sphere: uniform clouds are coordinate-symmetric (χ² small), the naive
/// cloud is biased toward the last axis.
fn cloud_stats(points: &[Vec<f64>]) -> (Vec<f64>, f64) {
    let d = points[0].len();
    let n = points.len();
    let mut means = vec![0.0; d];
    let mut counts = vec![0usize; d];
    for p in points {
        for (m, x) in means.iter_mut().zip(p) {
            *m += x / n as f64;
        }
        let argmax = (0..d)
            .max_by(|&a, &b| p[a].partial_cmp(&p[b]).unwrap())
            .unwrap();
        counts[argmax] += 1;
    }
    let expected = n as f64 / d as f64;
    let chi2 = counts
        .iter()
        .map(|&c| (c as f64 - expected).powi(2) / expected)
        .sum();
    (means, chi2)
}

fn fig3(_: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 3",
        "naive angle sampling in R³ is non-uniform (1000 points)",
        "coordinate",
        "mean coordinate value",
    );
    let mut rng = StdRng::seed_from_u64(seeds::SAMPLER);
    let pts: Vec<Vec<f64>> = (0..1000)
        .map(|_| sample_angles_naive(&mut rng, 3))
        .collect();
    let (means, chi2) = cloud_stats(&pts);
    let mut s = Series::new("naive (uniform angles)");
    for (j, m) in means.iter().enumerate() {
        s.push(j as f64 + 1.0, *m);
    }
    fig.series.push(s);
    fig.note(format!(
        "argmax-cell χ² = {chi2:.1} (df = 2; uniform stays below ~14): density piles \
         up near the x₃ pole, exactly the bias the paper's scatter plot shows"
    ));
    fig
}

fn fig4(_: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 4",
        "Algorithm 9 samples uniformly on the orthant sphere (1000 points)",
        "coordinate",
        "mean coordinate value",
    );
    let mut rng = StdRng::seed_from_u64(seeds::SAMPLER);
    let pts: Vec<Vec<f64>> = (0..1000)
        .map(|_| sample_orthant_direction(&mut rng, 3))
        .collect();
    let (means, chi2) = cloud_stats(&pts);
    let mut s = Series::new("Algorithm 9");
    for (j, m) in means.iter().enumerate() {
        s.push(j as f64 + 1.0, *m);
    }
    fig.series.push(s);
    fig.note(format!(
        "argmax-cell χ² = {chi2:.1} (df = 2): consistent with uniformity"
    ));
    fig
}

fn fig6(_: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 6",
        "cap sampling: 200 points each around (π/3,π/3) via the Riemann table and \
         (π/6,π/4) via the closed-form inverse CDF (θ = π/20)",
        "statistic (1 = max polar angle, 2 = KS deviation)",
        "value",
    );
    let theta = PI / 20.0;
    for (label, angles, forced_table) in [
        ("table @ (π/3, π/3)", [PI / 3.0, PI / 3.0], true),
        ("closed-form @ (π/6, π/4)", [PI / 6.0, PI / 4.0], false),
    ] {
        let ray = srank_geom::polar::to_cartesian(1.0, &angles);
        let sampler = if forced_table {
            CapSampler::with_forced_table(&ray, theta, 4096)
        } else {
            CapSampler::new(&ray, theta)
        };
        let mut rng = StdRng::seed_from_u64(seeds::SAMPLER);
        let mut max_angle = 0.0f64;
        let mut ks = 0.0f64;
        let n = 200;
        let mut polar: Vec<f64> = (0..n)
            .map(|_| {
                let w = sampler.sample(&mut rng);
                let a = srank_geom::vector::angle_between(&w, &ray).unwrap();
                max_angle = max_angle.max(a);
                a
            })
            .collect();
        polar.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let denom = sin_power_integral(theta, 1);
        for (i, &x) in polar.iter().enumerate() {
            let emp = (i + 1) as f64 / n as f64;
            let ana = sin_power_integral(x.min(theta), 1) / denom;
            ks = ks.max((emp - ana).abs());
        }
        let mut s = Series::new(label);
        s.push(1.0, max_angle);
        s.push(2.0, ks);
        fig.series.push(s);
    }
    fig.note(format!(
        "row 1 = max polar angle (must be ≤ θ = {theta:.4}); row 2 = KS deviation vs \
         Eq. 14 (200 points ⇒ 99% critical ≈ 0.115)"
    ));
    fig
}

// ---------------------------------------------------------------------------
// §6.2 stability-investigation figures
// ---------------------------------------------------------------------------

fn stability_distribution_2d(data: &Dataset, interval: AngleInterval) -> Vec<Region2DInfo> {
    let e = Enumerator2D::new(data, interval).expect("2-D dataset");
    let mut regions: Vec<Region2DInfo> = e.regions().to_vec();
    regions.sort_by(|a, b| b.stability.partial_cmp(&a.stability).unwrap());
    regions
}

fn fig7(_: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 7",
        "CSMetrics: distribution of rankings by stability (U* = U)",
        "rank (by stability)",
        "stability",
    );
    let data = csmetrics_dataset();
    let regions = stability_distribution_2d(&data, AngleInterval::full());
    let mut s = Series::new("stability");
    for (i, r) in regions.iter().enumerate() {
        s.push((i + 1) as f64, r.stability);
    }
    fig.series.push(s);

    let reference = data.rank(&[0.3, 0.7]).unwrap();
    let v = stability_verify_2d(&data, &reference, AngleInterval::full())
        .unwrap()
        .unwrap();
    let position = regions
        .iter()
        .position(|r| (r.stability - v.stability).abs() < 1e-15);
    fig.note(format!("{} feasible rankings (paper: 336)", regions.len()));
    fig.note(format!(
        "reference ranking (α = 0.3): stability {:.5} — the {}-th most stable \
         (paper: 0.0032, 108th)",
        v.stability,
        position.map(|p| p + 1).unwrap_or(0)
    ));
    fig.note(format!(
        "most stable ranking: {:.5} (paper: ~0.02)",
        regions[0].stability
    ));
    fig
}

fn fig8(_: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 8",
        "CSMetrics: stability around reference ⟨0.3, 0.7⟩ with 0.998 cosine similarity",
        "rank (by stability)",
        "stability",
    );
    let data = csmetrics_dataset();
    let interval = AngleInterval::around(&[0.3, 0.7], 0.998f64.acos()).unwrap();
    let regions = stability_distribution_2d(&data, interval);
    let mut s = Series::new("stability");
    for (i, r) in regions.iter().enumerate() {
        s.push((i + 1) as f64, r.stability);
    }
    fig.series.push(s);
    let reference = data.rank(&[0.3, 0.7]).unwrap();
    let v = stability_verify_2d(&data, &reference, interval)
        .unwrap()
        .unwrap();
    let pos = regions
        .iter()
        .position(|r| (r.stability - v.stability).abs() < 1e-15);
    fig.note(format!(
        "{} feasible rankings in the region (paper: 22)",
        regions.len()
    ));
    fig.note(format!(
        "reference ranking: stability {:.5}, position {} (paper: well below the max)",
        v.stability,
        pos.map(|p| p + 1).unwrap_or(0)
    ));
    fig
}

fn fig9(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 9",
        "FIFA: top-100 stable rankings around ⟨1, .5, .3, .2⟩ with 0.999 cosine \
         similarity (GET-NEXTmd, 10K samples)",
        "rank (by stability)",
        "stability",
    );
    let data = fifa_dataset();
    let roi = RegionOfInterest::cone_cosine(&[1.0, 0.5, 0.3, 0.2], 0.999);
    let n_samples = match scale {
        Scale::Quick => 3_000,
        _ => 10_000,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let mut md = MdEnumerator::new(&data, &roi, n_samples, &mut rng).unwrap();
    let top = md.top_h(100);
    let mut s = Series::new("stability");
    for (i, r) in top.iter().enumerate() {
        s.push((i + 1) as f64, r.stability);
    }
    fig.series.push(s);
    let reference = data.rank(&[1.0, 0.5, 0.3, 0.2]).unwrap();
    let in_top = top.iter().any(|r| r.ranking == reference);
    fig.note(format!(
        "reference ranking in top-100 stable: {in_top} (paper: not in top-100)"
    ));
    fig.note(format!(
        "{} exchange hyperplanes cross the cone",
        md.num_hyperplanes()
    ));
    fig
}

// ---------------------------------------------------------------------------
// §6.3 performance figures
// ---------------------------------------------------------------------------

fn fig10(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 10",
        "2D stability verification (SV2D): time and stability vs n (Blue Nile, d = 2)",
        "n",
        "seconds / stability",
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[100, 1_000, 10_000],
        _ => &[100, 1_000, 10_000, 100_000],
    };
    let mut t_series = Series::new("time (s)");
    let mut s_series = Series::new("stability of default ranking");
    for &n in ns {
        let data = bluenile_dataset(n, 2);
        let ranking = data.rank(&[1.0, 1.0]).unwrap();
        let (v, secs) = time(|| {
            stability_verify_2d(&data, &ranking, AngleInterval::full())
                .unwrap()
                .unwrap()
        });
        t_series.push(n as f64, secs);
        s_series.push(n as f64, v.stability);
    }
    fig.series.push(t_series);
    fig.series.push(s_series);
    fig.note("paper: linear time, 0.12 s at n = 100K; stability 10⁻² → 10⁻⁶".to_string());
    fig
}

fn fig11(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 11",
        "2D GET-NEXT: first call (ray sweep) vs subsequent calls vs n (Blue Nile, d = 2)",
        "n",
        "seconds",
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[100, 1_000],
        Scale::Default => &[100, 1_000, 10_000],
        Scale::Full => &[100, 1_000, 10_000, 100_000],
    };
    let mut first = Series::new("first call (s)");
    let mut subsequent = Series::new("subsequent call (s)");
    for &n in ns {
        let data = bluenile_dataset(n, 2);
        let (mut e, t_first) = time(|| {
            let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
            let _ = e.get_next();
            e
        });
        let (_, t_rest) = time(|| {
            for _ in 0..10 {
                if e.get_next().is_none() {
                    break;
                }
            }
        });
        first.push(n as f64, t_first);
        subsequent.push(n as f64, t_rest / 10.0);
    }
    fig.series.push(first);
    fig.series.push(subsequent);
    fig.note(
        "paper: first call < 10 s at n = 100K; subsequent calls orders of magnitude \
         cheaper — the same first/subsequent gap holds here (Blue Nile's 2-D \
         projection is nearly dominance-free, so the sweep handles ~n²/2 exchanges)"
            .to_string(),
    );
    fig
}

fn fig12(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 12",
        "MD stability verification: time and stability vs n (d = 3, 1M samples)",
        "n",
        "seconds / stability",
    );
    let (ns, n_samples): (&[usize], usize) = match scale {
        Scale::Quick => (&[100, 1_000], 100_000),
        _ => (&[100, 1_000, 10_000], 1_000_000),
    };
    let roi = RegionOfInterest::full(3);
    let mut rng = StdRng::seed_from_u64(12);
    let samples = roi.sampler().sample_buffer(&mut rng, n_samples);
    let mut t_series = Series::new("time (s)");
    let mut s_series = Series::new("stability of default ranking");
    for &n in ns {
        let data = bluenile_dataset(n, 3);
        let ranking = data.rank(&[1.0, 1.0, 1.0]).unwrap();
        let (v, secs) = time(|| {
            stability_verify_md(&data, &ranking, &samples)
                .unwrap()
                .unwrap()
        });
        t_series.push(n as f64, secs);
        s_series.push(n as f64, v.stability);
    }
    fig.series.push(t_series);
    fig.series.push(s_series);
    fig.note(format!(
        "{n_samples} samples; paper: < 1 min at n = 10K, stability ≈ 0 beyond 100 items"
    ));
    fig
}

fn getnextmd_call_times(
    data: &Dataset,
    roi: &RegionOfInterest,
    n_samples: usize,
    calls: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut md = MdEnumerator::new(data, roi, n_samples, &mut rng).unwrap();
    (0..calls)
        .map_while(|_| {
            let (r, secs) = time(|| md.get_next());
            r.map(|_| secs)
        })
        .collect()
}

fn fig13(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 13",
        "GET-NEXTmd: per-call time for the top-10 stable rankings vs n \
         (d = 3, θ = π/100)",
        "call #",
        "seconds",
    );
    let (ns, n_samples): (&[usize], usize) = match scale {
        Scale::Quick => (&[10, 100], 20_000),
        Scale::Default => (&[10, 100, 1_000], 50_000),
        Scale::Full => (&[10, 100, 1_000, 10_000], 100_000),
    };
    for &n in ns {
        let data = bluenile_dataset(n, 3);
        let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 100.0);
        let times = getnextmd_call_times(&data, &roi, n_samples, 10, 13);
        let mut s = Series::new(format!("n={n}"));
        for (i, t) in times.iter().enumerate() {
            s.push((i + 1) as f64, *t);
        }
        fig.series.push(s);
    }
    fig.note(format!(
        "{n_samples} samples; paper: up to thousands of seconds at n = 10K — the \
         O(n²) hyperplane set dominates at large n in both implementations"
    ));
    fig
}

fn fig14(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 14",
        "GET-NEXTmd: per-call time for the top-10 stable rankings vs d \
         (n = 100, θ = π/100)",
        "call #",
        "seconds",
    );
    let n_samples = if scale == Scale::Quick {
        20_000
    } else {
        100_000
    };
    for d in [3usize, 4, 5] {
        let data = bluenile_dataset(100, d);
        let roi = RegionOfInterest::cone(&vec![1.0; d], PI / 100.0);
        let times = getnextmd_call_times(&data, &roi, n_samples, 10, 14);
        let mut s = Series::new(format!("d={d}"));
        for (i, t) in times.iter().enumerate() {
            s.push((i + 1) as f64, *t);
        }
        fig.series.push(s);
    }
    fig.note(
        "paper: running times similar across d — the sample partition makes per-region \
         work dimension-independent"
            .to_string(),
    );
    fig
}

fn fig15(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 15",
        "GET-NEXTmd: per-call time for the top-10 stable rankings vs θ \
         (n = 100, d = 3)",
        "call #",
        "seconds",
    );
    let n_samples = if scale == Scale::Quick {
        20_000
    } else {
        100_000
    };
    for (label, theta) in [
        ("θ=π/10", PI / 10.0),
        ("θ=π/50", PI / 50.0),
        ("θ=π/100", PI / 100.0),
    ] {
        let data = bluenile_dataset(100, 3);
        let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], theta);
        let times = getnextmd_call_times(&data, &roi, n_samples, 10, 15);
        let mut s = Series::new(label);
        for (i, t) in times.iter().enumerate() {
            s.push((i + 1) as f64, *t);
        }
        fig.series.push(s);
    }
    fig.note("paper: similar times across θ, for the same reason as Figure 14".to_string());
    fig
}

// ---------------------------------------------------------------------------
// Randomized-operator figures
// ---------------------------------------------------------------------------

struct RandomizedRun {
    first_time: f64,
    subsequent_time: f64,
    top_stability: f64,
    top_error: f64,
    stabilities: Vec<f64>,
}

fn run_randomized(
    data: &Dataset,
    roi: &RegionOfInterest,
    scope: RankingScope,
    first_budget: usize,
    next_budget: usize,
    calls: usize,
    seed: u64,
) -> RandomizedRun {
    let mut op = RandomizedEnumerator::new(data, roi, scope, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let (first, first_time) = time(|| op.get_next_budget(&mut rng, first_budget).unwrap());
    let mut stabilities = vec![first.stability];
    let (_, rest_time) = time(|| {
        for _ in 1..calls {
            match op.get_next_budget(&mut rng, next_budget) {
                Some(d) => stabilities.push(d.stability),
                None => break,
            }
        }
    });
    RandomizedRun {
        first_time,
        subsequent_time: rest_time / (calls.max(2) - 1) as f64,
        top_stability: first.stability,
        top_error: first.confidence_error,
        stabilities,
    }
}

fn fig16(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 16",
        "GET-NEXTr (ranked top-10): first-call time and top stability vs n \
         (d = 3, θ = π/50, budget 5000/1000)",
        "n",
        "seconds / stability",
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[1_000, 10_000],
        _ => &[1_000, 10_000, 100_000],
    };
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 50.0);
    let mut t = Series::new("first call (s)");
    let mut s = Series::new("stability of top ranking");
    let mut notes = Vec::new();
    for &n in ns {
        let data = bluenile_dataset(n, 3);
        let run = run_randomized(
            &data,
            &roi,
            RankingScope::TopKRanked(10),
            5_000,
            1_000,
            10,
            16,
        );
        t.push(n as f64, run.first_time);
        s.push(n as f64, run.top_stability);
        notes.push(format!("n={n}: e = {:.5}", run.top_error));
    }
    fig.series.push(t);
    fig.series.push(s);
    for n in notes {
        fig.note(n);
    }
    fig.note("paper: minutes at 100K; top-k stability barely decreases with n".to_string());
    fig
}

fn fig17(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 17",
        "GET-NEXTr: stability of the top-10 stable partial rankings — set vs ranked \
         per n (d = 3, θ = π/50, k = 10)",
        "top-h",
        "stability",
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[1_000, 10_000],
        _ => &[1_000, 10_000, 100_000],
    };
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 50.0);
    for &n in ns {
        let data = bluenile_dataset(n, 3);
        for (label, scope) in [
            (format!("n={n}; set"), RankingScope::TopKSet(10)),
            (format!("n={n}; ranked"), RankingScope::TopKRanked(10)),
        ] {
            let run = run_randomized(&data, &roi, scope, 5_000, 1_000, 10, 17);
            let mut s = Series::new(label);
            for (i, st) in run.stabilities.iter().enumerate() {
                s.push((i + 1) as f64, *st);
            }
            fig.series.push(s);
        }
    }
    fig.note(
        "paper: sets are more stable than ranked prefixes; distributions barely move \
         with n"
            .to_string(),
    );
    fig
}

fn fig18(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 18",
        "DoT: GET-NEXTr first/subsequent call time vs n (top-10 sets, d = 3, θ = π/50)",
        "n",
        "seconds",
    );
    let ns: &[usize] = match scale {
        Scale::Quick => &[10_000, 100_000],
        _ => &[10_000, 100_000, 1_000_000],
    };
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 50.0);
    let mut first = Series::new("first call (s)");
    let mut rest = Series::new("subsequent call (s)");
    for &n in ns {
        let data = dot_dataset(n);
        let run = run_randomized(&data, &roi, RankingScope::TopKSet(10), 5_000, 1_000, 5, 18);
        first.push(n as f64, run.first_time);
        rest.push(n as f64, run.subsequent_time);
    }
    fig.series.push(first);
    fig.series.push(rest);
    fig.note(
        "paper: linear in n, ~1 h at 1M rows (Python); the 5:1 budget ratio separates \
         the two curves"
            .to_string(),
    );
    fig
}

fn fig19(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 19",
        "GET-NEXTr (ranked top-10): time and top stability vs d (n = 10K, θ = π/50)",
        "d",
        "seconds / stability",
    );
    let n = if scale == Scale::Quick { 2_000 } else { 10_000 };
    let mut t = Series::new("first call (s)");
    let mut s = Series::new("stability of top ranking");
    let mut notes = Vec::new();
    for d in [3usize, 4, 5] {
        let data = bluenile_dataset(n, d);
        let roi = RegionOfInterest::cone(&vec![1.0; d], PI / 50.0);
        let run = run_randomized(
            &data,
            &roi,
            RankingScope::TopKRanked(10),
            5_000,
            1_000,
            10,
            19,
        );
        t.push(d as f64, run.first_time);
        s.push(d as f64, run.top_stability);
        notes.push(format!("d={d}: e = {:.5}", run.top_error));
    }
    fig.series.push(t);
    fig.series.push(s);
    for n in notes {
        fig.note(n);
    }
    fig.note("paper: similar times across d; stability falls as d grows".to_string());
    fig
}

fn fig20(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 20",
        "GET-NEXTr: stability of top-10 stable partial rankings — set vs ranked per d \
         (n = 10K, θ = π/50, k = 10)",
        "top-h",
        "stability",
    );
    let n = if scale == Scale::Quick { 2_000 } else { 10_000 };
    for d in [3usize, 4, 5] {
        let data = bluenile_dataset(n, d);
        let roi = RegionOfInterest::cone(&vec![1.0; d], PI / 50.0);
        for (label, scope) in [
            (format!("d={d}; set"), RankingScope::TopKSet(10)),
            (format!("d={d}; ranked"), RankingScope::TopKRanked(10)),
        ] {
            let run = run_randomized(&data, &roi, scope, 5_000, 1_000, 10, 20);
            let mut s = Series::new(label);
            for (i, st) in run.stabilities.iter().enumerate() {
                s.push((i + 1) as f64, *st);
            }
            fig.series.push(s);
        }
    }
    fig.note("paper: sets beat ranked; more attributes ⇒ lower stability".to_string());
    fig
}

fn fig21(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "Figure 21",
        "synthetic data: stability of the top-10 stable top-k sets by correlation \
         (n = 10K, d = 3, θ = π/50, 5000 samples, k = 10)",
        "top-h",
        "stability",
    );
    let n = if scale == Scale::Quick { 2_000 } else { 10_000 };
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 50.0);
    for kind in [
        CorrelationKind::AntiCorrelated,
        CorrelationKind::Independent,
        CorrelationKind::Correlated,
    ] {
        let data = synthetic_dataset(kind, n, 3);
        let run = run_randomized(&data, &roi, RankingScope::TopKSet(10), 5_000, 1_000, 10, 21);
        let mut s = Series::new(kind.label());
        for (i, st) in run.stabilities.iter().enumerate() {
            s.push((i + 1) as f64, *st);
        }
        fig.series.push(s);
    }
    fig.note(
        "paper: correlated = highest peak and steepest slope; anti-correlated = \
         flattest"
            .to_string(),
    );
    fig
}
