//! `bench_record` — the PR-over-PR performance trajectory recorder.
//!
//! Measures the randomized-sampler kernel (cold `sample_n`, parallel
//! `sample_n_parallel`) on the full-scope DoT workload (n = 2000,
//! 100k samples), the faithful pre-interning baseline for comparison,
//! the service batch-op round-trip, the warm-restart
//! time-to-first-cached-verify through a snapshot/restore cycle, and the
//! request-tracing overhead (the same DoT 100k-sample verify kernel
//! through an engine with `--trace-sample 1` vs tracing disabled), and
//! the overload benchmark (open-loop probe p50/p99 against a swamped
//! pool, admission-control shedding on vs off), and the batch-dispatch
//! suite (cold/cached/mixed 8-sub batches vs sequential round-trips
//! plus a two-client session fairness probe), and the observability
//! overhead (the same DoT 100k-sample verify kernel with windowed
//! telemetry + per-client accounting on vs off), then writes the
//! numbers as JSON (`BENCH_10.json` by default) so future PRs can
//! diff throughput.
//!
//! ```text
//! cargo run --release -p srank-bench --bin bench_record -- [--smoke] [--out PATH]
//! ```
//!
//! Each sampler phase re-executes this binary (`--phase …`) so every
//! measurement runs in a fresh process: the legacy accumulator churns
//! ~1 GB of heap, and allocator/THP state left behind by one phase was
//! measured to distort the next by >50% when they share a process.
//!
//! `--smoke` shrinks every workload ~20× for a sub-minute CI sanity run
//! (same shape, useless absolute numbers — never commit a smoke file).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;
use srank_bench::dot_dataset;
use srank_core::prelude::*;
use srank_core::Dataset;
use srank_service::registry::DatasetSource;
use srank_service::{serve_tcp, Client, Engine, EngineConfig};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const N_ITEMS: usize = 2000;
const SEED: u64 = 16;

/// The pre-PR accumulator, verbatim: allocate a weight vector per draw,
/// score row-major, sort with the indirect comparator, clone the scratch
/// ranking into an owned key, and count it in a `HashMap` under the
/// default (SipHash) hasher. Kept here so the recorded speedup is against
/// the real historical kernel, not a strawman.
fn legacy_sample_n(data: &Dataset, roi: &RegionOfInterest, n: usize) -> usize {
    let sampler = roi.sampler();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut counts: HashMap<Vec<u32>, (u64, Vec<f64>)> = HashMap::new();
    let (mut scores, mut idx) = (Vec::new(), Vec::new());
    for _ in 0..n {
        let w = sampler.sample(&mut rng);
        data.scores_into_row_major(&w, &mut scores);
        idx.clear();
        idx.extend(0..data.len() as u32);
        idx.sort_unstable_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        match counts.entry(idx.clone()) {
            Entry::Occupied(mut e) => e.get_mut().0 += 1,
            Entry::Vacant(e) => {
                e.insert((1, w));
            }
        }
    }
    counts.len()
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn rate(n: usize, seconds: f64) -> Value {
    obj(vec![
        ("seconds", Value::Number(seconds)),
        ("ops_per_sec", Value::Number(n as f64 / seconds)),
    ])
}

/// Runs one sampler phase in *this* process and prints a JSON line.
fn run_phase(phase: &str, samples: usize, threads: usize) {
    let data = dot_dataset(N_ITEMS);
    let roi = RegionOfInterest::full(data.dim());
    let (seconds, distinct) = match phase {
        "legacy" => {
            let t = Instant::now();
            let distinct = legacy_sample_n(&data, &roi, samples);
            (t.elapsed().as_secs_f64(), distinct)
        }
        "kernel" => {
            let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
            let mut rng = StdRng::seed_from_u64(SEED);
            let t = Instant::now();
            e.sample_n(&mut rng, samples);
            (t.elapsed().as_secs_f64(), e.distinct_observed())
        }
        "parallel" => {
            let mut e = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
            let t = Instant::now();
            e.sample_n_parallel(SEED, samples, threads);
            (t.elapsed().as_secs_f64(), e.distinct_observed())
        }
        other => panic!("bench_record: unknown phase {other}"),
    };
    let line = obj(vec![
        ("seconds", Value::Number(seconds)),
        ("distinct", Value::Number(distinct as f64)),
    ]);
    println!("{}", serde_json::to_string(&line).unwrap());
}

/// Re-executes this binary for one phase, several fresh-process trials,
/// and returns the **minimum** wall time (the noise-free estimate on a
/// shared/virtualized host — first trials absorb frequency ramp-up and
/// page-cache warming) plus the distinct-key count.
fn spawn_phase(phase: &str, samples: usize, threads: usize, trials: usize) -> (f64, usize) {
    let exe = std::env::current_exe().expect("current exe");
    let mut best = f64::INFINITY;
    let mut distinct = 0usize;
    for trial in 0..trials {
        eprintln!(
            "sampler phase '{phase}' trial {}/{trials}: {samples} samples…",
            trial + 1
        );
        let output = std::process::Command::new(&exe)
            .args([
                "--phase",
                phase,
                "--samples",
                &samples.to_string(),
                "--threads",
                &threads.to_string(),
            ])
            .output()
            .expect("spawn phase");
        assert!(
            output.status.success(),
            "phase {phase} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let text = String::from_utf8(output.stdout).expect("phase output utf8");
        let value: Value = serde_json::from_str(text.trim()).expect("phase output JSON");
        best = best.min(
            value
                .get("seconds")
                .and_then(Value::as_f64)
                .expect("seconds"),
        );
        distinct = value
            .get("distinct")
            .and_then(Value::as_u64)
            .expect("distinct") as usize;
    }
    (best, distinct)
}

fn measure_sampler(samples: usize, trials: usize) -> (Value, f64) {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get().min(8));
    let (legacy_secs, legacy_distinct) = spawn_phase("legacy", samples, threads, trials);
    let (kernel_secs, kernel_distinct) = spawn_phase("kernel", samples, threads, trials);
    assert_eq!(
        kernel_distinct, legacy_distinct,
        "kernel and baseline must count the same stream identically"
    );
    let (parallel_secs, _) = spawn_phase("parallel", samples, threads, trials);

    let speedup = legacy_secs / kernel_secs;
    let value = obj(vec![
        (
            "workload",
            obj(vec![
                ("dataset", Value::String("dot".into())),
                ("n", Value::Number(N_ITEMS as f64)),
                ("d", Value::Number(3.0)),
                ("scope", Value::String("full".into())),
                ("samples", Value::Number(samples as f64)),
                ("distinct_rankings", Value::Number(legacy_distinct as f64)),
            ]),
        ),
        ("legacy_sample_n", rate(samples, legacy_secs)),
        ("cold_sample_n", rate(samples, kernel_secs)),
        (
            "parallel_sample_n",
            obj(vec![
                ("threads", Value::Number(threads as f64)),
                ("seconds", Value::Number(parallel_secs)),
                ("ops_per_sec", Value::Number(samples as f64 / parallel_secs)),
            ]),
        ),
        ("speedup_vs_legacy", Value::Number(speedup)),
    ]);
    (value, speedup)
}

fn measure_service(rounds: usize) -> Value {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine
        .registry()
        .load(
            "dot2000",
            &DatasetSource::Builtin {
                family: "dot".into(),
                n: N_ITEMS,
                d: 0,
                seed: 1322,
            },
        )
        .expect("builtin dataset loads");
    let mut server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0", 4).expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    const SUBS: usize = 8;
    let sub = |i: usize| {
        format!(
            r#"{{"id": {i}, "op": "verify", "dataset": "dot2000", "weights": [1, 1, {}], "samples": 20000}}"#,
            1.0 + i as f64 * 1e-3
        )
    };
    let batch_line = format!(
        r#"{{"op": "batch", "requests": [{}]}}"#,
        (0..SUBS).map(sub).collect::<Vec<_>>().join(", ")
    );
    let parse = |s: &str| serde_json::from_str(s).expect("valid JSON");

    // Warm every sub-result so both measurements exercise the same
    // (cached) compute and the difference is round-trip/fan-out overhead.
    for i in 0..SUBS {
        client.call_ok(&parse(&sub(i))).expect("warm verify");
    }

    eprintln!("service: {rounds} rounds of {SUBS} sequential round-trips…");
    let t = Instant::now();
    for _ in 0..rounds {
        for i in 0..SUBS {
            client.call_ok(&parse(&sub(i))).expect("sequential verify");
        }
    }
    let sequential_secs = t.elapsed().as_secs_f64();

    eprintln!("service: {rounds} rounds of one {SUBS}-sub batch op…");
    let batch_request = parse(&batch_line);
    let t = Instant::now();
    for _ in 0..rounds {
        let result = client.call_ok(&batch_request).expect("batch verify");
        let results = result
            .get("results")
            .and_then(Value::as_array)
            .expect("batch results");
        assert_eq!(results.len(), SUBS);
    }
    let batch_secs = t.elapsed().as_secs_f64();
    server.shutdown();

    obj(vec![
        ("sub_requests", Value::Number(SUBS as f64)),
        ("rounds", Value::Number(rounds as f64)),
        ("sequential", rate(rounds * SUBS, sequential_secs)),
        ("batch_op", rate(rounds * SUBS, batch_secs)),
        ("batch_speedup", Value::Number(sequential_secs / batch_secs)),
    ])
}

/// Batch-dispatch benchmark — the regression this PR series chased:
/// BENCH_5 measured an 8-sub batch *slower* than 8 sequential
/// round-trips (0.97×) because every sub paid the pool hop plus a
/// per-line serialize/flush. Three batch shapes, each batch-op vs
/// sequential over the same TCP connection:
///
/// * `cold_batch` — 8 cold exact verifies (pool-class): honest ~1.0× on
///   a single-core box (the kernels dominate and cannot overlap);
///   recorded, not gated.
/// * `cached_batch` — 8 result-cache hits: pure dispatch overhead.
/// * `mixed_batch` — 3 cached + 3 tiny cold inline-class verifies +
///   2 pings, the shape the inline classifier exists for.
///
/// Plus a two-client session fairness probe (tagged `session.get_next`
/// contention) recording `session_queue.fair_grants`.
fn measure_batch_dispatch(smoke: bool) -> Value {
    let rounds = if smoke { 5 } else { 50 };
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine
        .registry()
        .load(
            "dot2000",
            &DatasetSource::Builtin {
                family: "dot".into(),
                n: N_ITEMS,
                d: 0,
                seed: 1322,
            },
        )
        .expect("builtin dataset loads");
    // Small sibling dataset for the tiny inline-class subs: a verify's
    // floor is the query's own scoring + ranking pass, so on the
    // 2000-row set even a 200-sample Monte-Carlo verify costs ~400 µs —
    // swamping the dispatch overhead the mixed shape exists to measure.
    // On 200 rows the whole sub is tens of microseconds of kernel.
    engine
        .registry()
        .load(
            "dot200",
            &DatasetSource::Builtin {
                family: "dot".into(),
                n: 200,
                d: 0,
                seed: 1322,
            },
        )
        .expect("builtin dataset loads");
    let mut server = serve_tcp(Arc::clone(&engine), "127.0.0.1:0", 4).expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let parse = |s: &str| -> Value { serde_json::from_str(s).expect("valid JSON") };

    // Cached sub: fixed weights, warmed below → result-LRU hit.
    let cached_sub = |i: usize| {
        format!(
            r#"{{"id": {i}, "op": "verify", "dataset": "dot2000", "weights": [1, 1, {}], "samples": 20000}}"#,
            1.0 + i as f64 * 1e-3
        )
    };
    // Tiny inline-class sub: the cone ROI forces the d = 3 verify onto
    // the Monte-Carlo kernel, and 100 samples on the 200-row dataset is
    // tens of microseconds of kernel — well under the inline threshold,
    // and small enough that the dispatch cost (RTTs, pool hops,
    // serializes) stays the dominant term. `salt` keeps weights unique
    // per leg/round/slot so every call is a result-cache miss (the
    // *sample batch* is keyed without weights and stays warm — the
    // realistic steady state).
    let tiny_sub = |i: usize, salt: usize| {
        format!(
            r#"{{"id": {i}, "op": "verify", "dataset": "dot200", "weights": [1, 1, {}], "roi": {{"around": [1, 1, 1], "theta": 0.5}}, "samples": 100, "seed": 99}}"#,
            1.0 + salt as f64 * 1e-5
        )
    };
    // Cold pool-class sub: no ROI → the exact d = 3 kernel over all
    // 2000 rows, well over the inline row bound; unique weights per
    // leg/round/slot keep every call a real kernel run.
    let cold_sub = |i: usize, salt: usize| {
        format!(
            r#"{{"id": {i}, "op": "verify", "dataset": "dot2000", "weights": [1, 1, {}]}}"#,
            1.0 + salt as f64 * 1e-5
        )
    };

    // Warms the cached subs and the tiny subs' shared sample batch.
    // Re-run before every shape that depends on warm entries: the cold
    // shape inserts 8 unique results per round, which churns the
    // 512-entry result LRU past the warm set on a full-length run.
    let warm = |client: &mut Client| {
        for i in 0..8 {
            client.call_ok(&parse(&cached_sub(i))).expect("warm verify");
        }
        client
            .call_ok(&parse(&tiny_sub(0, 999_999)))
            .expect("warm sample batch");
    };
    warm(&mut client);

    // Measures `shape_rounds` rounds of one 8-sub shape, sequential
    // then batch; `subs(round, slot, leg)` yields each sub-request
    // line. The cheap shapes run 10× the rounds of the kernel-bound
    // cold shape — their legs are microseconds per call, and the extra
    // rounds keep one scheduler hiccup from flipping the speedup.
    let measure_shape = |client: &mut Client,
                         name: &str,
                         shape_rounds: usize,
                         subs: &dyn Fn(usize, usize, usize) -> String|
     -> Value {
        eprintln!("batch_dispatch/{name}: {shape_rounds} rounds, sequential vs batch…");
        let t = Instant::now();
        for round in 0..shape_rounds {
            for slot in 0..8 {
                client
                    .call_ok(&parse(&subs(round, slot, 0)))
                    .expect("sequential sub");
            }
        }
        let sequential_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        for round in 0..shape_rounds {
            let line = format!(
                r#"{{"op": "batch", "requests": [{}]}}"#,
                (0..8)
                    .map(|slot| subs(round, slot, 1))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let result = client.call_ok(&parse(&line)).expect("batch op");
            let results = result
                .get("results")
                .and_then(Value::as_array)
                .expect("batch results");
            assert_eq!(results.len(), 8);
        }
        let batch_secs = t.elapsed().as_secs_f64();
        obj(vec![
            ("rounds", Value::Number(shape_rounds as f64)),
            ("sequential", rate(shape_rounds * 8, sequential_secs)),
            ("batch_op", rate(shape_rounds * 8, batch_secs)),
            ("batch_speedup", Value::Number(sequential_secs / batch_secs)),
        ])
    };

    // Salt stride of 10_000 per leg: wider than any shape's round
    // count, so a sequential-leg weight can never collide with (and
    // pre-cache) a batch-leg weight.
    let cold = measure_shape(&mut client, "cold", rounds, &|round, slot, leg| {
        cold_sub(slot, (leg * 10_000 + round) * 8 + slot + 1)
    });
    warm(&mut client);
    let cached = measure_shape(&mut client, "cached", rounds * 10, &|_, slot, _| {
        cached_sub(slot)
    });
    warm(&mut client);
    let mixed = measure_shape(
        &mut client,
        "mixed",
        rounds * 10,
        &|round, slot, leg| match slot {
            0..=2 => cached_sub(slot),
            3..=5 => tiny_sub(slot, 100_000 + (leg * 10_000 + round) * 8 + slot),
            _ => format!(r#"{{"id": {slot}, "op": "ping"}}"#),
        },
    );

    // The dispatch-cost attribution behind the speedups: phase
    // histograms plus the inline/coalescing counters, snapshotted after
    // the three shapes ran.
    let stats = client
        .call_ok(&parse(r#"{"op": "stats"}"#))
        .expect("stats op");
    let pool = stats.get("pool").cloned().unwrap_or(Value::Null);
    let dispatch_counters = obj(vec![
        (
            "inline_answered",
            pool.get("inline_answered").cloned().unwrap_or(Value::Null),
        ),
        (
            "writes_coalesced",
            pool.get("writes_coalesced").cloned().unwrap_or(Value::Null),
        ),
        (
            "pool_submitted",
            pool.get("submitted").cloned().unwrap_or(Value::Null),
        ),
    ]);
    let phases = stats.get("phases").cloned().unwrap_or(Value::Null);

    // Fairness probe: a greedy client "A" (two connections) and a
    // polite client "B" (one) hammer tagged `session.get_next` on the
    // same session. When both of A's requests bracket B in the queue,
    // FIFO would grant A twice in a row; the fair pick lets B overtake,
    // visible as `fair_grants`. (Two single-connection clients strictly
    // alternate on their own, so the fair path would never fire.)
    let open = client
        .call_ok(&parse(
            r#"{"op": "session.open", "dataset": "dot2000", "kind": "randomized", "scope": "top-k-set", "k": 5, "seed": 7, "budget": 1000000}"#,
        ))
        .expect("session opens");
    let session = open
        .get("session")
        .and_then(Value::as_u64)
        .expect("session id");
    let probe_rounds = if smoke { 20 } else { 200 };
    std::thread::scope(|s| {
        for tag in ["A", "A", "B"] {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                // Small per-call budget override: the probe measures
                // queue contention, not enumeration depth — a full
                // 1M-sample draw per call would dominate the wait times
                // (and outlast the server's idle disconnect).
                let line = format!(
                    r#"{{"op": "session.get_next", "session": {session}, "client": "{tag}", "budget": 20000}}"#
                );
                let request: Value = serde_json::from_str(&line).expect("valid JSON");
                for _ in 0..probe_rounds {
                    c.call_ok(&request).expect("tagged get_next");
                }
            });
        }
    });
    // The probe can outlast the server's 60 s idle disconnect on the
    // (quiet) main connection; re-dial before reading the stats.
    client.reconnect().expect("reconnect");
    let stats = client
        .call_ok(&parse(r#"{"op": "stats"}"#))
        .expect("stats op");
    let queue = stats.get("session_queue").cloned().unwrap_or(Value::Null);
    let fairness = obj(vec![
        (
            "probe_rounds_per_connection",
            Value::Number(probe_rounds as f64),
        ),
        (
            "fair_grants",
            queue.get("fair_grants").cloned().unwrap_or(Value::Null),
        ),
        (
            "granted",
            queue.get("granted").cloned().unwrap_or(Value::Null),
        ),
        (
            "wait_p99_micros",
            queue.get("wait_p99_micros").cloned().unwrap_or(Value::Null),
        ),
    ]);
    server.shutdown();

    obj(vec![
        ("rounds", Value::Number(rounds as f64)),
        ("cold_batch", cold),
        ("cached_batch", cached),
        ("mixed_batch", mixed),
        ("dispatch_counters", dispatch_counters),
        ("phases", phases),
        ("fairness_probe", fairness),
    ])
}

/// Tracing-overhead benchmark: the full-scope DoT verify (Monte-Carlo
/// kernel over `samples` weight samples, forced by a wide cone ROI on
/// the d = 3 data) through an engine tracing every request
/// (`trace_sample: 1`) vs one with tracing compiled to its disabled
/// path (`trace_sample: 0`). Every call uses fresh weights (result-cache
/// misses), so each one runs the real kernel; the shared sample batch is
/// warmed first in both engines so per-call work is identical. Reports
/// the min-of-`trials` block time per mode and the overhead percentage —
/// the acceptance gate is ≤ 2%.
fn measure_tracing(samples: usize, rounds: usize, trials: usize) -> Value {
    let engine_for = |trace_sample: u64| {
        let engine = Engine::new(EngineConfig {
            trace_sample,
            ..EngineConfig::default()
        });
        engine
            .registry()
            .load(
                "dot2000",
                &DatasetSource::Builtin {
                    family: "dot".into(),
                    n: N_ITEMS,
                    d: 0,
                    seed: 1322,
                },
            )
            .expect("builtin dataset loads");
        engine
    };
    let call = |engine: &Engine, req: &str| {
        let response: Value = serde_json::from_str(&engine.handle_line(req)).unwrap();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "{req}: {response:?}"
        );
    };
    // Unique weights per call → result-cache miss → the kernel runs.
    // The ROI forces the d = 3 verify onto the Monte-Carlo kernel.
    let verify = |i: usize| {
        format!(
            r#"{{"op": "verify", "dataset": "dot2000", "weights": [1, 1, {}], "roi": {{"around": [1, 1, 1], "theta": 0.5}}, "samples": {samples}, "seed": 99}}"#,
            1.0 + i as f64 * 1e-4
        )
    };
    let run_block = |engine: &Engine, base: usize| -> f64 {
        let t = Instant::now();
        for i in 0..rounds {
            call(engine, &verify(base + i));
        }
        t.elapsed().as_secs_f64()
    };

    let off = engine_for(0);
    let on = engine_for(1);
    // Warm the shared sample batch (and code/caches) in both engines.
    call(&off, &verify(999_999));
    call(&on, &verify(999_999));

    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for trial in 0..trials {
        eprintln!(
            "tracing trial {}/{trials}: {rounds} verifies × {samples} samples, off vs on…",
            trial + 1
        );
        // Interleave modes within each trial, alternating which goes
        // first, so frequency drift and scheduler preemption hit both
        // sides equally instead of always taxing the second block.
        if trial % 2 == 0 {
            best_off = best_off.min(run_block(&off, 1 + trial * rounds));
            best_on = best_on.min(run_block(&on, 1 + trial * rounds));
        } else {
            best_on = best_on.min(run_block(&on, 1 + trial * rounds));
            best_off = best_off.min(run_block(&off, 1 + trial * rounds));
        }
    }
    let overhead_percent = (best_on - best_off) / best_off * 100.0;
    obj(vec![
        ("samples", Value::Number(samples as f64)),
        ("rounds", Value::Number(rounds as f64)),
        ("trace_sample", Value::Number(1.0)),
        ("tracing_disabled", rate(rounds, best_off)),
        ("tracing_enabled", rate(rounds, best_on)),
        ("overhead_percent", Value::Number(overhead_percent)),
    ])
}

/// Observability overhead: the 100k-sample Monte-Carlo verify kernel
/// through an engine with the obs layer fully on (windowed ring
/// attached, per-client accounting charging a tagged client, kernel
/// CPU measured) vs fully off (`window_telemetry: false`,
/// `client_table_capacity: 0`). Same structure as [`measure_tracing`]:
/// interleaved min-of-N blocks so drift taxes both sides equally.
fn measure_obs(samples: usize, rounds: usize, trials: usize) -> Value {
    let engine_for = |on: bool| {
        let engine = Engine::new(EngineConfig {
            window_telemetry: on,
            client_table_capacity: if on { 64 } else { 0 },
            ..EngineConfig::default()
        });
        engine
            .registry()
            .load(
                "dot2000",
                &DatasetSource::Builtin {
                    family: "dot".into(),
                    n: N_ITEMS,
                    d: 0,
                    seed: 1322,
                },
            )
            .expect("builtin dataset loads");
        engine
    };
    let call = |engine: &Engine, req: &str| {
        let response: Value = serde_json::from_str(&engine.handle_line(req)).unwrap();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "{req}: {response:?}"
        );
    };
    // Unique weights per call → result-cache miss → the kernel runs;
    // the client tag exercises the accounting path on the on-side (the
    // off-side parses the same bytes, so the request cost is identical).
    let verify = |i: usize| {
        format!(
            r#"{{"op": "verify", "dataset": "dot2000", "weights": [1, 1, {}], "roi": {{"around": [1, 1, 1], "theta": 0.5}}, "samples": {samples}, "seed": 99, "client": "bench-tenant"}}"#,
            1.0 + i as f64 * 1e-4
        )
    };
    let run_block = |engine: &Engine, base: usize| -> f64 {
        let t = Instant::now();
        for i in 0..rounds {
            call(engine, &verify(base + i));
        }
        t.elapsed().as_secs_f64()
    };

    let off = engine_for(false);
    let on = engine_for(true);
    call(&off, &verify(999_999));
    call(&on, &verify(999_999));

    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for trial in 0..trials {
        eprintln!(
            "obs trial {}/{trials}: {rounds} tagged verifies × {samples} samples, off vs on…",
            trial + 1
        );
        if trial % 2 == 0 {
            best_off = best_off.min(run_block(&off, 1 + trial * rounds));
            best_on = best_on.min(run_block(&on, 1 + trial * rounds));
        } else {
            best_on = best_on.min(run_block(&on, 1 + trial * rounds));
            best_off = best_off.min(run_block(&off, 1 + trial * rounds));
        }
    }
    let overhead_percent = (best_on - best_off) / best_off * 100.0;
    obj(vec![
        ("samples", Value::Number(samples as f64)),
        ("rounds", Value::Number(rounds as f64)),
        ("obs_disabled", rate(rounds, best_off)),
        ("obs_enabled", rate(rounds, best_on)),
        ("overhead_percent", Value::Number(overhead_percent)),
    ])
}

/// Warm-restart benchmark: time-to-first-cached-verify across a
/// snapshot/restore cycle, against the cold computation it avoids.
fn measure_persistence(samples: usize) -> Value {
    let dir = std::env::temp_dir().join(format!("srank-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let with_dir = || {
        Engine::new(EngineConfig {
            data_dir: Some(dir.clone()),
            ..EngineConfig::default()
        })
    };
    let load = format!(
        r#"{{"op": "registry.load", "dataset": "dot2000", "builtin": "dot", "n": {N_ITEMS}, "d": 0, "seed": 1322}}"#
    );
    let verify = format!(
        r#"{{"op": "verify", "dataset": "dot2000", "weights": [1, 1, 1.5], "samples": {samples}}}"#
    );
    let call = |engine: &Engine, req: &str| -> Value {
        let response: Value = serde_json::from_str(&engine.handle_line(req)).unwrap();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "{req}: {response:?}"
        );
        response
    };

    eprintln!("persistence: cold verify + snapshot…");
    let cold_secs;
    {
        let engine = with_dir();
        call(&engine, &load);
        let t = Instant::now();
        call(&engine, &verify);
        cold_secs = t.elapsed().as_secs_f64();
        call(&engine, r#"{"op": "snapshot"}"#);
    }

    eprintln!("persistence: warm restart…");
    let t = Instant::now();
    let engine = with_dir(); // boot restore happens inside
    let restore_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let response = call(&engine, &verify);
    let warm_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        response.get("cached").and_then(Value::as_bool),
        Some(true),
        "first verify after restart must be a cache hit"
    );
    let _ = std::fs::remove_dir_all(&dir);

    obj(vec![
        ("samples", Value::Number(samples as f64)),
        ("cold_verify_seconds", Value::Number(cold_secs)),
        ("restore_boot_seconds", Value::Number(restore_secs)),
        ("warm_first_cached_verify_seconds", Value::Number(warm_secs)),
        (
            "time_to_first_cached_verify_seconds",
            Value::Number(restore_secs + warm_secs),
        ),
        (
            "warm_speedup_vs_cold",
            Value::Number(cold_secs / (restore_secs + warm_secs)),
        ),
    ])
}

/// Overload benchmark: open-loop latency of probe requests against a
/// deliberately swamped pool (2 workers, background threads keeping
/// dozens of cold Monte-Carlo verifies queued), with admission-control
/// shedding on vs off. Probes ride through the same pool (single-sub
/// batches) on a fixed arrival schedule; latency is measured from the
/// *scheduled* send time, so backlog-induced drift counts against the
/// tail instead of being coordinated-omitted away. The claim under
/// test: shedding fast-fails the backlog, keeping both the cold-probe
/// tail (fast typed `overloaded` instead of a long queue wait) and the
/// cache-hit tail (hits are always admitted) bounded.
fn measure_overload(smoke: bool) -> Value {
    use srank_service::guard::GuardConfig;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    // Each buffered batch holds at most pool-width subs in flight, so
    // queue depth scales with *connections*: 4 background connections ×
    // a 2-wide window keep ~6 jobs queued against a threshold of 2.
    const BG_THREADS: usize = 4;
    const BG_SUBS: usize = 8;
    let (probes, interval_ms) = if smoke {
        (10usize, 20u64)
    } else {
        (40usize, 25u64)
    };

    let percentile = |sorted: &[f64], p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    };

    let run_mode = |shedding: bool| -> Value {
        let engine = Arc::new(Engine::new(EngineConfig {
            pool_workers: 2,
            guard: GuardConfig {
                shed_pool_queue: if shedding { 2 } else { 0 },
                ..GuardConfig::default()
            },
            ..EngineConfig::default()
        }));
        engine
            .registry()
            .load(
                "dot2000",
                &DatasetSource::Builtin {
                    family: "dot".into(),
                    n: N_ITEMS,
                    d: 0,
                    seed: 1322,
                },
            )
            .expect("builtin dataset loads");
        let mut server =
            serve_tcp(Arc::clone(&engine), "127.0.0.1:0", BG_THREADS + 4).expect("bind");
        let addr = server.addr();
        let parse = |s: &str| -> Value { serde_json::from_str(s).expect("valid JSON") };

        // Warm the fixed-weight verify so warm probes are cache hits.
        let warm_sub =
            r#"{"op": "verify", "dataset": "dot2000", "weights": [1, 1, 1.5], "samples": 20000}"#
                .to_string();
        {
            let mut setup = Client::connect(addr).expect("connect");
            setup.call_ok(&parse(&warm_sub)).expect("warm verify");
        }

        // Uncontended baseline: the same warm single-sub batch probe with
        // no background load. The acceptance bar for shedding is the warm
        // RTT p99 under overload staying within 5× of this.
        let warm_line = format!(r#"{{"op": "batch", "requests": [{warm_sub}]}}"#);
        let mut uncontended: Vec<f64> = {
            let mut client = Client::connect(addr).expect("connect");
            (0..probes)
                .map(|_| {
                    let sent = Instant::now();
                    client.call_ok(&parse(&warm_line)).expect("baseline probe");
                    sent.elapsed().as_secs_f64() * 1_000.0
                })
                .collect()
        };
        uncontended.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let uncontended_p50 = percentile(&uncontended, 0.50);
        let uncontended_p99 = percentile(&uncontended, 0.99);

        let stop = AtomicBool::new(false);
        let bg_batches = AtomicUsize::new(0);
        let cold_seq = AtomicUsize::new(0);
        // Unique weights per draw → never a cache hit → real kernel work.
        let cold_sub = |i: usize| {
            format!(
                r#"{{"op": "verify", "dataset": "dot2000", "weights": [1, 1, {}], "samples": 20000}}"#,
                2.0 + i as f64 * 1e-4
            )
        };

        eprintln!(
            "overload (shedding {}): {probes} probes × {interval_ms} ms against a swamped 2-worker pool…",
            if shedding { "on" } else { "off" }
        );
        let (cold_lat, warm_lat, shed_count) = std::thread::scope(|scope| {
            for _ in 0..BG_THREADS {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("connect");
                    while !stop.load(Ordering::Relaxed) {
                        let base = cold_seq.fetch_add(BG_SUBS, Ordering::Relaxed);
                        let line = format!(
                            r#"{{"op": "batch", "requests": [{}]}}"#,
                            (base..base + BG_SUBS)
                                .map(&cold_sub)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        // Sub-requests may individually be shed; the
                        // batch op itself still answers ok.
                        let _ = client.call_ok(&parse(&line));
                        bg_batches.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }

            let probe_thread = scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect");
                // Let the background threads build a backlog first.
                std::thread::sleep(std::time::Duration::from_millis(200));
                let mut cold_lat = Vec::new();
                let mut warm_lat = Vec::new();
                let mut shed = 0usize;
                let interval = std::time::Duration::from_millis(interval_ms);
                let start = Instant::now();
                for i in 0..probes * 2 {
                    let scheduled = interval * i as u32;
                    if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let cold = i % 2 == 0;
                    let sub = if cold {
                        cold_sub(1_000_000 + i)
                    } else {
                        warm_sub.clone()
                    };
                    let line = format!(r#"{{"op": "batch", "requests": [{sub}]}}"#);
                    let sent = Instant::now();
                    let result = client.call_ok(&parse(&line)).expect("probe batch");
                    // Open-loop latency: measured from the *scheduled*
                    // send, so when the server falls behind the arrival
                    // rate the drift lands in the tail (it diverges with
                    // run length once capacity is exceeded — that
                    // divergence is the shedding-off pathology). The RTT
                    // of the same probe is recorded alongside.
                    let latency = (start.elapsed() - scheduled).as_secs_f64() * 1_000.0;
                    let rtt = sent.elapsed().as_secs_f64() * 1_000.0;
                    let envelope = &result
                        .get("results")
                        .and_then(Value::as_array)
                        .expect("batch results")[0];
                    let code = envelope
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_str);
                    match code {
                        None | Some("overloaded") => {
                            if code.is_some() {
                                shed += 1;
                            }
                            if cold {
                                cold_lat.push((latency, rtt));
                            } else {
                                warm_lat.push((latency, rtt));
                            }
                        }
                        Some(other) => panic!("probe failed with {other}: {envelope:?}"),
                    }
                }
                (cold_lat, warm_lat, shed)
            });
            let out = probe_thread.join().expect("probe thread");
            stop.store(true, Ordering::Relaxed);
            out
        });
        server.shutdown();

        let stats: Value =
            serde_json::from_str(&engine.handle_line(r#"{"op": "stats"}"#)).expect("stats JSON");
        let shed_total = stats
            .get("result")
            .and_then(|r| r.get("guard"))
            .and_then(|g| g.get("shed_total"))
            .and_then(Value::as_u64)
            .unwrap_or(0);

        let class = |probes: &[(f64, f64)]| -> Value {
            let mut open: Vec<f64> = probes.iter().map(|p| p.0).collect();
            let mut rtt: Vec<f64> = probes.iter().map(|p| p.1).collect();
            open.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rtt.sort_by(|a, b| a.partial_cmp(b).unwrap());
            obj(vec![
                ("open_loop_p50_ms", Value::Number(percentile(&open, 0.50))),
                ("open_loop_p99_ms", Value::Number(percentile(&open, 0.99))),
                ("rtt_p50_ms", Value::Number(percentile(&rtt, 0.50))),
                ("rtt_p99_ms", Value::Number(percentile(&rtt, 0.99))),
            ])
        };
        let mut warm_rtt: Vec<f64> = warm_lat.iter().map(|p| p.1).collect();
        warm_rtt.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let warm_rtt_p99 = percentile(&warm_rtt, 0.99);

        obj(vec![
            ("shedding", Value::Bool(shedding)),
            ("probes_per_class", Value::Number(probes as f64)),
            ("probe_interval_ms", Value::Number(interval_ms as f64)),
            ("probes_shed", Value::Number(shed_count as f64)),
            ("shed_total", Value::Number(shed_total as f64)),
            (
                "background_batches",
                Value::Number(bg_batches.load(Ordering::Relaxed) as f64),
            ),
            ("cold_probe", class(&cold_lat)),
            ("warm_probe", class(&warm_lat)),
            (
                "uncontended_warm",
                obj(vec![
                    ("rtt_p50_ms", Value::Number(uncontended_p50)),
                    ("rtt_p99_ms", Value::Number(uncontended_p99)),
                ]),
            ),
            (
                "warm_rtt_p99_vs_uncontended",
                Value::Number(if uncontended_p99 > 0.0 {
                    warm_rtt_p99 / uncontended_p99
                } else {
                    0.0
                }),
            ),
        ])
    };

    let off = run_mode(false);
    let on = run_mode(true);
    obj(vec![
        ("workload", Value::String(
            "2-worker pool, 4 background connections of 8-sub cold-verify batches, open-loop probes through the same pool".into(),
        )),
        ("shedding_off", off),
        ("shedding_on", on),
    ])
}

fn main() {
    let mut smoke = false;
    let mut out = "BENCH_10.json".to_string();
    let mut phase: Option<String> = None;
    let mut samples_override: Option<usize> = None;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--phase" => phase = Some(args.next().expect("--phase needs a name")),
            "--samples" => {
                samples_override = Some(
                    args.next()
                        .expect("--samples needs a count")
                        .parse()
                        .unwrap(),
                )
            }
            "--threads" => threads = args.next().expect("--threads").parse().unwrap(),
            other => panic!("bench_record: unknown option {other}"),
        }
    }
    let (samples, rounds, trials) = if smoke {
        (5_000, 5, 1)
    } else {
        (100_000, 50, 3)
    };
    if let Some(phase) = phase {
        run_phase(&phase, samples_override.unwrap_or(samples), threads);
        return;
    }

    let (sampler, speedup) = measure_sampler(samples, trials);
    let service = measure_service(rounds);
    let persistence = measure_persistence(if smoke { 2_000 } else { 20_000 });
    // 40 rounds ≈ 100 ms per timed block: long enough that scheduler
    // jitter stops dominating the on-vs-off delta we are after. The
    // blocks are cheap, so take more trials than the sampler phases —
    // min-of-N converges on the unpreempted time for both sides.
    let tracing = measure_tracing(
        samples,
        if smoke { 2 } else { 40 },
        if smoke { trials } else { 10 },
    );
    let overload = measure_overload(smoke);
    let batch_dispatch = measure_batch_dispatch(smoke);
    let obs_overhead = measure_obs(
        samples,
        if smoke { 2 } else { 40 },
        if smoke { trials } else { 10 },
    );
    let report = obj(vec![
        ("bench", Value::String("BENCH_10".into())),
        (
            "mode",
            Value::String(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("sampler", sampler),
        ("service_batch", service),
        ("warm_restart", persistence),
        ("tracing_overhead", tracing),
        ("overload_shedding", overload),
        ("batch_dispatch", batch_dispatch),
        ("obs_overhead", obs_overhead),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out, format!("{json}\n")).expect("write report");
    println!("{json}");
    eprintln!("sampler speedup vs legacy: {speedup:.2}× → {out}");
}
