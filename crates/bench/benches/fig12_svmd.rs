//! Figure 12: multi-dimensional stability verification time vs dataset
//! size (d = 3, Monte-Carlo oracle).
//!
//! Paper shape: the region has O(n) half-spaces so cost grows with n, but
//! the early-exit oracle stays near-linear in |S| because most samples
//! violate one of the first constraints they test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_svmd");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    let roi = RegionOfInterest::full(3);
    let mut rng = StdRng::seed_from_u64(12);
    let samples = roi.sampler().sample_buffer(&mut rng, 100_000);
    for n in [100usize, 1_000, 10_000] {
        let data = bluenile_dataset(n, 3);
        let ranking = data.rank(&[1.0, 1.0, 1.0]).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    stability_verify_md(black_box(&data), black_box(&ranking), &samples).unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
