//! Figure 15: `GET-NEXTmd` — top-10 stable rankings vs width of the region
//! of interest θ (n = 100, d = 3).
//!
//! Paper shape: similar times across θ — narrowing the cone reduces the
//! hyperplane count but the fixed sample budget dominates.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_getnextmd_theta");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    let data = bluenile_dataset(100, 3);
    for (label, theta) in [
        ("pi_10", PI / 10.0),
        ("pi_50", PI / 50.0),
        ("pi_100", PI / 100.0),
    ] {
        let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], theta);
        let mut rng = StdRng::seed_from_u64(15);
        let template = MdEnumerator::new(&data, &roi, 20_000, &mut rng).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &theta, |b, _| {
            b.iter_batched(
                || template.clone(),
                |mut e| black_box(e.top_h(10)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
