//! Ablation microbenches for the sampling substrate (§5): the design
//! choices DESIGN.md calls out.
//!
//! * orthant sampling (Algorithm 9) — the per-sample floor every operator
//!   pays;
//! * cap sampling: closed-form inverse CDF (d = 3) vs Riemann table vs
//!   acceptance–rejection — the §5.2 method-selection trade-off;
//! * stability oracle: sequential vs multi-threaded (Algorithm 12);
//! * §5.4 sample partitioning vs a fresh oracle count — the O(1)-stability
//!   trick the lazy arrangement rests on.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_geom::hyperplane::{HalfSpace, OrderingExchange};
use srank_geom::region::ConeRegion;
use srank_sample::cap::CapSampler;
use srank_sample::oracle::{estimate_stability, estimate_stability_parallel};
use srank_sample::partition::PartitionedSamples;
use srank_sample::sphere::sample_orthant_direction;
use srank_sample::store::SampleBuffer;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench_sphere(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampler_orthant");
    g.sample_size(30).warm_up_time(Duration::from_millis(300));
    for d in [2usize, 3, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sample_orthant_direction(&mut rng, d)))
        });
    }
    g.finish();
}

fn bench_cap_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampler_cap_method");
    g.sample_size(30).warm_up_time(Duration::from_millis(300));
    let ray = [1.0, 1.0, 1.0];
    let theta = PI / 50.0;

    let closed = CapSampler::new(&ray, theta);
    g.bench_function("closed_form_d3", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(closed.sample(&mut rng)))
    });

    let table = CapSampler::with_forced_table(&ray, theta, 4096);
    g.bench_function("riemann_table_d3", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(table.sample(&mut rng)))
    });

    // Acceptance–rejection from the orthant proposal: the method the §5.2
    // cost model rejects for narrow cones (expected trials ≈ 1/p ≫ log|L|).
    g.bench_function("rejection_d3", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let unit = srank_geom::vector::normalized(&ray).unwrap();
        b.iter(|| loop {
            let w = sample_orthant_direction(&mut rng, 3);
            if srank_geom::vector::angle_between(&w, &unit).unwrap() <= theta {
                break black_box(w);
            }
        })
    });
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("stability_oracle");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(3);
    let samples = SampleBuffer::generate(&mut rng, 1_000_000, |r| sample_orthant_direction(r, 3));
    let region = ConeRegion::from_halfspaces(
        3,
        vec![
            HalfSpace::new(vec![1.0, -1.0, 0.0]),
            HalfSpace::new(vec![0.0, 1.0, -1.0]),
        ],
    );
    g.bench_function("sequential_1M", |b| {
        b.iter(|| black_box(estimate_stability(&region, &samples)))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("parallel_1M", threads),
            &threads,
            |b, &t| b.iter(|| black_box(estimate_stability_parallel(&region, &samples, t))),
        );
    }
    g.finish();
}

fn bench_partition_vs_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_vs_oracle");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(4);
    let buffer = SampleBuffer::generate(&mut rng, 200_000, |r| sample_orthant_direction(r, 3));
    let hp = OrderingExchange::from_coeffs(vec![0.4, -0.8, 0.3]);
    let region = ConeRegion::from_halfspaces(3, vec![HalfSpace::new(vec![0.4, -0.8, 0.3])]);

    // One partition pays O(|S|) once; afterwards stability reads are O(1).
    g.bench_function("partition_once_200k", |b| {
        b.iter_batched(
            || PartitionedSamples::new(buffer.clone()),
            |mut ps| {
                let split = ps.partition(0, 200_000, &hp).split;
                black_box(ps.stability_of_range(split, 200_000))
            },
            BatchSize::LargeInput,
        )
    });
    // The naive alternative recounts the whole buffer per query.
    g.bench_function("oracle_recount_200k", |b| {
        b.iter(|| black_box(estimate_stability(&region, &buffer)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sphere,
    bench_cap_methods,
    bench_oracle,
    bench_partition_vs_oracle
);
criterion_main!(benches);
