//! Figure 11: 2-D `GET-NEXT` — first call (runs the ray sweep) vs
//! subsequent calls (heap pops), vs dataset size.
//!
//! Paper shape: first call orders of magnitude costlier than subsequent
//! calls; both grow with n. Criterion stops at n ≈ 3000 (the Blue Nile 2-D
//! projection is nearly dominance-free, so the sweep processes ~n²/2
//! exchange events); the `figures` binary extends further.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_first_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_first_call");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    for n in [100usize, 1_000, 3_000] {
        let data = bluenile_dataset(n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut e = Enumerator2D::new(black_box(&data), AngleInterval::full()).unwrap();
                black_box(e.get_next())
            })
        });
    }
    g.finish();
}

fn bench_subsequent_calls(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_subsequent_call");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    for n in [100usize, 1_000, 3_000] {
        let data = bluenile_dataset(n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    // The sweep runs in setup (not measured); the timed part
                    // is one heap pop + midpoint ranking, i.e. a subsequent
                    // GET-NEXT call.
                    let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
                    let _ = e.get_next();
                    e
                },
                |mut e| black_box(e.get_next()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_first_call, bench_subsequent_calls);
criterion_main!(benches);
