//! Figure 13: `GET-NEXTmd` — retrieving the top-10 stable rankings vs
//! dataset size (d = 3, θ = π/100).
//!
//! The enumerator is built once per size in setup (sampling + `×hps`); the
//! measured unit is the ten GET-NEXT calls from a cloned checkpoint, which
//! is what the paper's per-call plot integrates to.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_getnextmd_top10");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 100.0);
    for n in [10usize, 100, 1_000] {
        let data = bluenile_dataset(n, 3);
        let mut rng = StdRng::seed_from_u64(13);
        let template = MdEnumerator::new(&data, &roi, 20_000, &mut rng).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || template.clone(),
                |mut e| black_box(e.top_h(10)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
