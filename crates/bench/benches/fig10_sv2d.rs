//! Figure 10: 2-D stability verification (`SV2D`) time vs dataset size.
//!
//! Paper shape: linear in n (0.12 s at n = 100K in Python). The criterion
//! grid stops at 10⁴ to keep `cargo bench` short; the `figures` binary
//! extends to 10⁵.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_sv2d");
    g.sample_size(20).warm_up_time(Duration::from_millis(300));
    for n in [100usize, 1_000, 10_000] {
        let data = bluenile_dataset(n, 2);
        let ranking = data.rank(&[1.0, 1.0]).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    stability_verify_2d(
                        black_box(&data),
                        black_box(&ranking),
                        AngleInterval::full(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
