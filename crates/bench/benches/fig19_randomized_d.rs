//! Figure 19: randomized `GET-NEXTr` (ranked top-10) — first-call time vs
//! number of attributes d (n = 10K, θ = π/50).
//!
//! Paper shape: similar times across d — the O(n) selection dominates the
//! O(d) scoring.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_randomized_d");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    for d in [3usize, 4, 5] {
        let data = bluenile_dataset(10_000, d);
        let roi = RegionOfInterest::cone(&vec![1.0; d], PI / 50.0);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter_batched(
                || {
                    let op =
                        RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(10), 0.05)
                            .unwrap();
                    (op, StdRng::seed_from_u64(19))
                },
                |(mut op, mut rng)| black_box(op.get_next_budget(&mut rng, 5_000)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
