//! Figure 14: `GET-NEXTmd` — top-10 stable rankings vs number of
//! attributes d (n = 100, θ = π/100).
//!
//! Paper shape: similar times across d, because the sample-partition trick
//! makes per-region work depend on the sample count rather than on the
//! dimension of the arrangement.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_getnextmd_d");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    for d in [3usize, 4, 5] {
        let data = bluenile_dataset(100, d);
        let roi = RegionOfInterest::cone(&vec![1.0; d], PI / 100.0);
        let mut rng = StdRng::seed_from_u64(14);
        let template = MdEnumerator::new(&data, &roi, 20_000, &mut rng).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter_batched(
                || template.clone(),
                |mut e| black_box(e.top_h(10)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
