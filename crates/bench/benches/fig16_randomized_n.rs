//! Figure 16: randomized `GET-NEXTr` (ranked top-10) — first-call time vs
//! dataset size (d = 3, θ = π/50, 5000-sample budget).
//!
//! Paper shape: near-linear in n; per-sample cost is one O(n) selection.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_randomized_first_call");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 50.0);
    for n in [1_000usize, 10_000, 100_000] {
        let data = bluenile_dataset(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    let op =
                        RandomizedEnumerator::new(&data, &roi, RankingScope::TopKRanked(10), 0.05)
                            .unwrap();
                    (op, StdRng::seed_from_u64(16))
                },
                |(mut op, mut rng)| black_box(op.get_next_budget(&mut rng, 5_000)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
