//! The randomized-sampler hot path: interned kernel vs the pre-PR
//! accumulator shape, on the full-scope DoT workload (reduced sample
//! counts — `bench_record` runs the committed 100k-sample figures).
//!
//! Three flavours: the legacy HashMap accumulator (row-major scores,
//! indirect comparator sort, owned-key clone per sample), the interned
//! kernel (`sample_n`), and the worker-merged parallel kernel
//! (`sample_n_parallel`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::bluenile_dataset;
use srank_core::prelude::*;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("randomized_kernel");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(10));
    let data = bluenile_dataset(2000, 3);
    let roi = RegionOfInterest::full(3);
    let samples = 2_000usize;

    g.bench_with_input(
        BenchmarkId::new("legacy_hashmap", samples),
        &samples,
        |b, &n| {
            b.iter(|| {
                let sampler = roi.sampler();
                let mut rng = StdRng::seed_from_u64(7);
                let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
                let (mut scores, mut idx) = (Vec::new(), Vec::new());
                for _ in 0..n {
                    let w = sampler.sample(&mut rng);
                    data.scores_into_row_major(&w, &mut scores);
                    idx.clear();
                    idx.extend(0..data.len() as u32);
                    idx.sort_unstable_by(|&a, &b| {
                        scores[b as usize]
                            .partial_cmp(&scores[a as usize])
                            .unwrap()
                            .then(a.cmp(&b))
                    });
                    *counts.entry(idx.clone()).or_insert(0) += 1;
                }
                black_box(counts.len())
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("interned_kernel", samples),
        &samples,
        |b, &n| {
            b.iter(|| {
                let mut e =
                    RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
                let mut rng = StdRng::seed_from_u64(7);
                e.sample_n(&mut rng, n);
                black_box(e.distinct_observed())
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("parallel_kernel", samples),
        &samples,
        |b, &n| {
            let threads = std::thread::available_parallelism().map_or(1, |p| p.get().min(8));
            b.iter(|| {
                let mut e =
                    RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
                e.sample_n_parallel(7, n, threads);
                black_box(e.distinct_observed())
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
