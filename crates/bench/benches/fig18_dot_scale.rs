//! Figure 18: DoT scalability — randomized `GET-NEXTr` call time vs n up
//! to 10⁶ flight records (top-10 sets, d = 3, θ = π/50).
//!
//! The criterion grid uses a reduced 100-sample budget so the n = 10⁶
//! point stays benchable (the per-sample cost is what scales with n); the
//! `figures` binary runs the paper's 5000/1000 budgets. Paper shape:
//! linear in n.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::dot_dataset;
use srank_core::prelude::*;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_dot_call");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(20));
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 50.0);
    for n in [10_000usize, 100_000, 1_000_000] {
        let data = dot_dataset(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    let op =
                        RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(10), 0.05)
                            .unwrap();
                    (op, StdRng::seed_from_u64(18))
                },
                |(mut op, mut rng)| black_box(op.get_next_budget(&mut rng, 100)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
