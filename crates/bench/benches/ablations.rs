//! Ablation benches for the algorithmic design choices of the core crate.
//!
//! * **2-D enumeration**: the kinetic ray sweep of Algorithm 2 vs the
//!   classical sort-all-exchanges baseline — same output (tests assert
//!   it), different constants;
//! * **passThrough**: the §5.4 sample-partition test vs the exact LP of
//!   §4.2 inside `GET-NEXTmd`;
//! * **parallel sampling**: the sequential vs multi-threaded randomized
//!   operator on a large workload.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_bench::{bluenile_dataset, dot_dataset};
use srank_core::prelude::*;
use srank_core::regions_via_sorted_exchanges;
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

fn bench_2d_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_2d_enumeration");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    for n in [100usize, 500, 1_000] {
        let data = bluenile_dataset(n, 2);
        g.bench_with_input(BenchmarkId::new("ray_sweep", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Enumerator2D::new(&data, AngleInterval::full())
                        .unwrap()
                        .num_regions(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("sorted_exchanges", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    regions_via_sorted_exchanges(&data, AngleInterval::full())
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn bench_passthrough_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_passthrough");
    g.sample_size(10).warm_up_time(Duration::from_millis(300));
    let data = bluenile_dataset(40, 3);
    let roi = RegionOfInterest::full(3);
    let mut rng = StdRng::seed_from_u64(42);
    let buffer = roi.sampler().sample_buffer(&mut rng, 5_000);
    for (label, mode) in [
        ("sample_partition", PassThroughMode::SamplePartition),
        ("exact_lp", PassThroughMode::ExactLp),
    ] {
        let template =
            MdEnumerator::with_samples_and_mode(&data, &roi, buffer.clone(), mode).unwrap();
        g.bench_function(BenchmarkId::new("top5", label), |b| {
            b.iter_batched(
                || template.clone(),
                |mut e| black_box(e.top_h(5)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_parallel_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parallel_sampling");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(15));
    let data = dot_dataset(100_000);
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], PI / 50.0);
    for threads in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter_batched(
                || RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(10), 0.05).unwrap(),
                |mut op| {
                    op.sample_n_parallel(7, 500, t);
                    black_box(op.total_samples())
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_2d_enumeration,
    bench_passthrough_modes,
    bench_parallel_sampling
);
criterion_main!(benches);
