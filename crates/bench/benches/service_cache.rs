//! srank-service result cache: cold vs cached query latency.
//!
//! The acceptance bar for the service is a ≥ 10× speedup of a repeated
//! identical `verify` over a cold one on a DoT/FIFA-sized dataset; the
//! measured gap is orders of magnitude larger (an LRU lookup vs a full
//! Monte-Carlo verification), which is the whole point of fronting the
//! paper's oracles with a cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srank_service::registry::DatasetSource;
use srank_service::{Engine, EngineConfig};
use std::hint::black_box;
use std::time::Duration;

struct Workload {
    label: &'static str,
    family: &'static str,
    n: usize,
    weights: &'static str,
}

const WORKLOADS: &[Workload] = &[
    // The paper's DoT flight table (d = 3) at interactive scale.
    Workload {
        label: "dot2000",
        family: "dot",
        n: 2_000,
        weights: "[1, 1, 1]",
    },
    // The FIFA top-100 workload (d = 4) of Figures 13–17.
    Workload {
        label: "fifa100",
        family: "fifa",
        n: 100,
        weights: "[1, 1, 1, 1]",
    },
];

fn engine_for(w: &Workload) -> Engine {
    let engine = Engine::new(EngineConfig::default());
    engine
        .registry()
        .load(
            w.label,
            &DatasetSource::Builtin {
                family: w.family.into(),
                n: w.n,
                d: 0,
                seed: 1322,
            },
        )
        .expect("builtin dataset loads");
    engine
}

fn verify_line(w: &Workload, weights: &str, seed: u64) -> String {
    format!(
        r#"{{"op": "verify", "dataset": "{}", "weights": {weights}, "samples": 20000, "seed": {seed}}}"#,
        w.label
    )
}

fn bench_cold_vs_cached(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_verify");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(10));
    for w in WORKLOADS {
        let engine = engine_for(w);
        // Cold path: every iteration changes the seed, so both the result
        // cache and the sample cache miss and the full Monte-Carlo
        // verification runs.
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::new("cold", w.label), w, |b, w| {
            b.iter(|| {
                seed += 1;
                black_box(engine.handle_line(&verify_line(w, w.weights, seed)))
            })
        });
        // Cached path: the identical request, answered from the LRU.
        let line = verify_line(w, w.weights, 999);
        engine.handle_line(&line); // prime
        g.bench_with_input(BenchmarkId::new("cached", w.label), w, |b, _| {
            b.iter(|| black_box(engine.handle_line(&line)))
        });
        // Sample-reuse middle ground: new weights every iteration, same
        // dataset/ROI — the result cache misses but the Monte-Carlo batch
        // is shared instead of redrawn.
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("sample_reuse", w.label), w, |b, w| {
            b.iter(|| {
                i += 1;
                let weights = w
                    .weights
                    .replace("1]", &format!("{}]", 1.0 + i as f64 * 1e-6));
                black_box(engine.handle_line(&verify_line(w, &weights, 999)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cold_vs_cached);
criterion_main!(benches);
