//! `srank-analyze`: a zero-dependency static analyzer for the
//! stable-rankings workspace, run as a hard gate by `scripts/check.sh`.
//!
//! The analyzer is brace/token-aware, not a full parser: it lexes each
//! source file once (stripping comments and string contents while
//! remembering where the strings were), drops `#[cfg(test)]` blocks,
//! and runs five project-invariant passes over the result:
//!
//! 1. **`lock-order`** — extracts every `OrderedMutex`/`OrderedRwLock`
//!    construction site in `crates/service`, attributes nested
//!    acquisitions into a static lock-order graph, and fails on rank
//!    inversions or cycles. Raw `std::sync::Mutex`/`RwLock`
//!    construction outside the wrapper module is also a finding: every
//!    service lock must carry a rank. `// analyze: lock-order(a < b)`
//!    declares an edge the code may not exhibit syntactically.
//! 2. **`panic-path`** — flags `unwrap()`/`expect(`/`panic!`/
//!    `unreachable!`/slice-indexing in the request-serving files
//!    (engine, server, pool, session, guard) unless annotated
//!    `// analyze: allow(panic, reason)`.
//! 3. **`stats-drift`** — cross-checks `COUNTER_CATALOG` in
//!    `metrics.rs` (the `(stats_path, prometheus_series)` contract
//!    table) against counter-like string literals in the source and
//!    against `crates/service/README.md`, failing on one-sided
//!    additions in either direction.
//! 4. **`wire-op`** — every op string in the engine dispatch match must
//!    have a README protocol entry (`` **`op`** ``) and at least one
//!    integration test mentioning it, and the README error-code table
//!    must equal the canonical typed list in `proto.rs`.
//! 5. **`dead-counter`** — every `COUNTER_CATALOG` row's stats-path
//!    leaf must show mutation evidence somewhere in
//!    `crates/service/src` (`fetch_add`/`store`/`+=`/…): a cataloged
//!    counter nothing increments is dead weight that rots the docs.
//!    `// analyze: allow(dead-counter, reason)` escapes values
//!    computed at read time (lengths, uptimes, derived rates).
//!
//! The library is deliberately path-driven ([`analyze`] takes a root
//! directory shaped like the workspace) so the self-tests can point it
//! at miniature fixture trees with seeded violations.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One analyzer finding. `rule` is the pass id (`lock-order`,
/// `panic-path`, `stats-drift`, `wire-op`, `dead-counter`); `file` is
/// root-relative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

// ---------------------------------------------------------------------
// Lexing

/// A string literal surviving test-stripping: byte span of the whole
/// literal (quotes included) in the cleaned text, line, and value.
#[derive(Debug, Clone)]
pub struct StrLit {
    pub pos: usize,
    pub end: usize,
    pub line: usize,
    pub value: String,
}

/// One `// analyze: …` annotation (text after the marker, trimmed).
#[derive(Debug, Clone)]
pub struct Annotation {
    pub line: usize,
    pub text: String,
}

/// A lexed source file: `code` is the original text with comments and
/// string/char contents blanked to spaces (newlines preserved, so byte
/// offsets and line numbers line up with the original), `#[cfg(test)]`
/// blocks blanked as well.
#[derive(Debug)]
pub struct SourceFile {
    pub file: String,
    pub code: String,
    pub strings: Vec<StrLit>,
    pub annotations: Vec<Annotation>,
}

const ANNOTATION_MARKER: &str = "analyze:";

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `text`: blanks comments and literal contents, records string
/// literals and `// analyze:` annotations.
fn lex(file: &str, text: &str) -> SourceFile {
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut strings = Vec::new();
    let mut annotations = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let blank = |out: &mut Vec<u8>, c: u8| out.push(if c == b'\n' { b'\n' } else { b' ' });
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            out.push(c);
            i += 1;
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            // Line comment; may carry an `// analyze:` annotation.
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            let body = text[start + 2..i].trim_start_matches(['/', '!']).trim();
            if let Some(rest) = body.strip_prefix(ANNOTATION_MARKER) {
                annotations.push(Annotation {
                    line,
                    text: rest.trim().to_string(),
                });
            }
            out.extend(std::iter::repeat_n(b' ', i - start));
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            // Nested block comment.
            let mut depth = 1;
            blank(&mut out, c);
            blank(&mut out, b[i + 1]);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
        } else if c == b'"' {
            let (end, value, newlines) = scan_string(b, i, 0);
            strings.push(StrLit {
                pos: i,
                end,
                line,
                value,
            });
            for &x in &b[i..end] {
                blank(&mut out, x);
            }
            line += newlines;
            i = end;
        } else if (c == b'r' || c == b'b')
            && (i == 0 || !is_ident(b[i - 1]))
            && raw_string_hashes(b, i).is_some()
        {
            let hashes = raw_string_hashes(b, i).unwrap();
            let open = i + (b[i..].iter().take_while(|&&x| x != b'"').count());
            let (end, value, newlines) = scan_string(b, open, hashes);
            strings.push(StrLit {
                pos: i,
                end,
                line,
                value,
            });
            for &x in &b[i..end] {
                blank(&mut out, x);
            }
            line += newlines;
            i = end;
        } else if c == b'\'' {
            // Char literal vs lifetime: a char literal is 'x' or '\…'.
            let char_lit =
                i + 1 < b.len() && (b[i + 1] == b'\\' || (i + 2 < b.len() && b[i + 2] == b'\''));
            if char_lit {
                let mut j = i + 1;
                if b[j] == b'\\' {
                    j += 2; // skip the escaped char
                    while j < b.len() && b[j] != b'\'' {
                        j += 1; // \u{…} etc.
                    }
                } else {
                    j += 1;
                }
                let end = (j + 1).min(b.len());
                for &x in &b[i..end] {
                    blank(&mut out, x);
                }
                i = end;
            } else {
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    let mut source = SourceFile {
        file: file.to_string(),
        code: String::from_utf8(out).expect("blanking preserves UTF-8"),
        strings,
        annotations,
    };
    strip_tests(&mut source);
    source
}

/// If `b[i]` starts a raw/byte-raw string (`r"`, `r#"`, `br#"`, …),
/// returns the number of `#`s; `None` otherwise.
fn raw_string_hashes(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j < b.len() && b[j] == b'"').then_some(hashes)
}

/// Scans a string starting at the opening quote `b[open] == '"'`;
/// `hashes` > 0 means raw (no escapes, closed by `"` + hashes).
/// Returns (index past the close, value, newline count).
fn scan_string(b: &[u8], open: usize, hashes: usize) -> (usize, String, usize) {
    let mut value = Vec::new();
    let mut newlines = 0;
    let mut i = open + 1;
    while i < b.len() {
        if hashes == 0 && b[i] == b'\\' && i + 1 < b.len() {
            // A line-continuation escape hides a real newline.
            if b[i + 1] == b'\n' {
                newlines += 1;
            }
            value.push(b[i + 1]);
            i += 2;
            continue;
        }
        if b[i] == b'"' {
            if hashes == 0 {
                return (
                    i + 1,
                    String::from_utf8_lossy(&value).into_owned(),
                    newlines,
                );
            }
            let close = &b[i + 1..];
            if close.len() >= hashes && close[..hashes].iter().all(|&x| x == b'#') {
                return (
                    i + 1 + hashes,
                    String::from_utf8_lossy(&value).into_owned(),
                    newlines,
                );
            }
        }
        if b[i] == b'\n' {
            newlines += 1;
        }
        value.push(b[i]);
        i += 1;
    }
    (
        b.len(),
        String::from_utf8_lossy(&value).into_owned(),
        newlines,
    )
}

/// Blanks every `#[cfg(test)]`-attributed block and drops the strings
/// and annotations inside it.
fn strip_tests(source: &mut SourceFile) {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let code = source.code.clone();
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find("#[cfg(test)]") {
        let attr = from + at;
        let Some(open_rel) = code[attr..].find('{') else {
            break;
        };
        let open = attr + open_rel;
        let close = matching_brace(b, open).unwrap_or(b.len());
        ranges.push((attr, close + 1));
        from = close.min(b.len() - 1) + 1;
    }
    if ranges.is_empty() {
        return;
    }
    let mut out = source.code.clone().into_bytes();
    for &(s, e) in &ranges {
        let e = e.min(out.len());
        for item in out.iter_mut().take(e).skip(s) {
            if *item != b'\n' {
                *item = b' ';
            }
        }
    }
    source.code = String::from_utf8(out).expect("blanking preserves UTF-8");
    let inside = |pos: usize| ranges.iter().any(|&(s, e)| pos >= s && pos < e);
    source.strings.retain(|s| !inside(s.pos));
    let line_of = |target: usize| code.bytes().take(target).filter(|&c| c == b'\n').count() + 1;
    let test_lines: Vec<(usize, usize)> = ranges
        .iter()
        .map(|&(s, e)| (line_of(s), line_of(e.min(b.len()))))
        .collect();
    source
        .annotations
        .retain(|a| !test_lines.iter().any(|&(s, e)| a.line >= s && a.line <= e));
}

/// Index of the `}` matching the `{` at `open` (over cleaned text).
fn matching_brace(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn line_of(code: &str, pos: usize) -> usize {
    code.bytes().take(pos).filter(|&c| c == b'\n').count() + 1
}

// ---------------------------------------------------------------------
// Workspace loading

struct Workspace {
    /// Lexed `crates/service/src/**/*.rs`, sorted by path.
    service_src: Vec<SourceFile>,
    /// Raw `crates/service/README.md`.
    readme: String,
    /// Raw `crates/service/tests/*.rs`, `(name, text)`.
    service_tests: Vec<(String, String)>,
}

fn load(root: &Path) -> Result<Workspace, String> {
    let src_dir = root.join("crates/service/src");
    if !src_dir.is_dir() {
        return Err(format!(
            "{} is not a workspace root (missing crates/service/src)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    collect_rs(&src_dir, &mut files)?;
    files.sort();
    let mut service_src = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        service_src.push(lex(&rel, &text));
    }
    let readme_path = root.join("crates/service/README.md");
    let readme = fs::read_to_string(&readme_path)
        .map_err(|e| format!("read {}: {e}", readme_path.display()))?;
    let mut service_tests = Vec::new();
    let tests_dir = root.join("crates/service/tests");
    if tests_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&tests_dir)
            .map_err(|e| format!("read {}: {e}", tests_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        entries.sort();
        for path in entries {
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            service_tests.push((path.to_string_lossy().into_owned(), text));
        }
    }
    Ok(Workspace {
        service_src,
        readme,
        service_tests,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))? {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Pass 1: lock-order

#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: usize,
    declared: bool,
}

fn pass_lock_order(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Rank table from the wrapper module.
    let mut ranks: BTreeMap<String, u32> = BTreeMap::new();
    let lockorder = ws
        .service_src
        .iter()
        .find(|s| s.file.ends_with("/lockorder.rs"));
    if let Some(src) = lockorder {
        let mut from = 0;
        while let Some(at) = src.code[from..].find("const ") {
            let at = from + at;
            from = at + 6;
            let rest = &src.code[at + 6..];
            let ident: String = rest.chars().take_while(|c| is_ident(*c as u8)).collect();
            let after = &rest[ident.len()..];
            let Some(colon) = after.trim_start().strip_prefix(':') else {
                continue;
            };
            let Some(eq) = colon.find('=') else { continue };
            let value: String = colon[eq + 1..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '_')
                .collect();
            if let Ok(v) = value.replace('_', "").parse::<u32>() {
                if !colon.trim_start().starts_with("u16") {
                    continue;
                }
                if ranks.insert(ident.clone(), v).is_some() {
                    findings.push(Finding {
                        rule: "lock-order",
                        file: src.file.clone(),
                        line: line_of(&src.code, at),
                        message: format!("duplicate rank constant `{ident}`"),
                    });
                }
            }
        }
        let values: BTreeMap<u32, Vec<&String>> =
            ranks.iter().fold(BTreeMap::new(), |mut m, (k, &v)| {
                m.entry(v).or_default().push(k);
                m
            });
        for (v, names) in values {
            if names.len() > 1 {
                findings.push(Finding {
                    rule: "lock-order",
                    file: src.file.clone(),
                    line: 1,
                    message: format!(
                        "rank value {v} shared by {} — ranks must be unique to totally order the hierarchy",
                        names.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(", ")
                    ),
                });
            }
        }
    }

    // Construction sites: class string name -> rank, plus owner-field
    // and accessor-fn attribution maps for the nesting scan.
    let mut classes: BTreeMap<String, u32> = BTreeMap::new();
    let mut field_class: BTreeMap<String, Option<String>> = BTreeMap::new();
    for src in &ws.service_src {
        for needle in ["OrderedMutex::new(", "OrderedRwLock::new("] {
            let mut from = 0;
            while let Some(at) = src.code[from..].find(needle) {
                let at = from + at;
                from = at + needle.len();
                let args = &src.code[at + needle.len()..];
                let Some(const_name) = args.trim_start().strip_prefix("rank::").map(|rest| {
                    rest.chars()
                        .take_while(|c| is_ident(*c as u8))
                        .collect::<String>()
                }) else {
                    // Not a `rank::X` first argument (e.g. the wrapper's
                    // own generic impl) — skip.
                    continue;
                };
                let line = line_of(&src.code, at);
                let Some(&rank) = ranks.get(&const_name) else {
                    findings.push(Finding {
                        rule: "lock-order",
                        file: src.file.clone(),
                        line,
                        message: format!(
                            "unknown rank constant `rank::{const_name}` (not declared in lockorder.rs)"
                        ),
                    });
                    continue;
                };
                let Some(name_lit) = src
                    .strings
                    .iter()
                    .find(|s| s.pos > at && s.pos < at + needle.len() + 200)
                else {
                    continue;
                };
                let expected = const_name.to_ascii_lowercase();
                if name_lit.value != expected {
                    findings.push(Finding {
                        rule: "lock-order",
                        file: src.file.clone(),
                        line,
                        message: format!(
                            "lock class name \"{}\" does not match its rank constant `{const_name}` (expected \"{expected}\")",
                            name_lit.value
                        ),
                    });
                }
                classes.insert(name_lit.value.clone(), rank);
                if let Some(owner) = owner_ident(&src.code, at) {
                    match field_class.get(&owner) {
                        Some(Some(existing)) if existing != &name_lit.value => {
                            // Same field name holds different classes in
                            // different types (e.g. `inner`): ambiguous,
                            // excluded from attribution.
                            field_class.insert(owner, None);
                        }
                        Some(_) => {}
                        None => {
                            field_class.insert(owner, Some(name_lit.value.clone()));
                        }
                    }
                }
            }
        }
    }

    // Accessor functions returning a reference to a classified lock.
    let mut fn_class: BTreeMap<String, String> = BTreeMap::new();
    for src in &ws.service_src {
        let mut from = 0;
        while let Some(at) = src.code[from..].find("fn ") {
            let at = from + at;
            from = at + 3;
            if at > 0 && is_ident(src.code.as_bytes()[at - 1]) {
                continue;
            }
            let name: String = src.code[at + 3..]
                .chars()
                .take_while(|c| is_ident(*c as u8))
                .collect();
            if name.is_empty() {
                continue;
            }
            let Some(open_rel) = src.code[at..].find('{') else {
                continue;
            };
            let open = at + open_rel;
            let signature = &src.code[at..open];
            let returns_lock = signature
                .split("->")
                .nth(1)
                .is_some_and(|ret| ret.contains("OrderedMutex<") || ret.contains("OrderedRwLock<"));
            if !returns_lock {
                continue;
            }
            let close = matching_brace(src.code.as_bytes(), open).unwrap_or(src.code.len());
            let body = &src.code[open..close];
            let mut f = 0;
            while let Some(sat) = body[f..].find("self.") {
                let sat = f + sat;
                f = sat + 5;
                let field: String = body[sat + 5..]
                    .chars()
                    .take_while(|c| is_ident(*c as u8))
                    .collect();
                if let Some(Some(class)) = field_class.get(&field) {
                    fn_class.insert(name.clone(), class.clone());
                    break;
                }
            }
        }
    }

    // Raw lock construction outside the wrapper module.
    for src in &ws.service_src {
        if src.file.ends_with("/lockorder.rs") {
            continue;
        }
        for needle in ["Mutex::new(", "RwLock::new("] {
            let mut from = 0;
            while let Some(at) = src.code[from..].find(needle) {
                let at = from + at;
                from = at + needle.len();
                // `OrderedMutex::new(` contains `Mutex::new(`.
                if src.code[..at].ends_with("Ordered") {
                    continue;
                }
                findings.push(Finding {
                    rule: "lock-order",
                    file: src.file.clone(),
                    line: line_of(&src.code, at),
                    message: format!(
                        "raw std::sync::{} construction: service locks must be OrderedMutex/OrderedRwLock so they carry a rank",
                        needle.trim_end_matches("::new(")
                    ),
                });
            }
        }
    }

    // Nested acquisitions -> edges.
    let mut edges: Vec<Edge> = Vec::new();
    for src in &ws.service_src {
        scan_nesting(src, &field_class, &fn_class, &mut edges);
    }

    // Declared edges from annotations.
    for src in &ws.service_src {
        for ann in &src.annotations {
            let Some(inner) = ann
                .text
                .strip_prefix("lock-order(")
                .and_then(|t| t.strip_suffix(')'))
            else {
                continue;
            };
            let Some((a, b_)) = inner.split_once('<') else {
                findings.push(Finding {
                    rule: "lock-order",
                    file: src.file.clone(),
                    line: ann.line,
                    message: format!(
                        "malformed lock-order annotation `{}` (expected `lock-order(a < b)`)",
                        ann.text
                    ),
                });
                continue;
            };
            let (a, b_) = (a.trim().to_string(), b_.trim().to_string());
            let mut ok = true;
            for class in [&a, &b_] {
                if !classes.contains_key(class) {
                    findings.push(Finding {
                        rule: "lock-order",
                        file: src.file.clone(),
                        line: ann.line,
                        message: format!(
                            "lock-order annotation names unknown lock class `{class}` (no OrderedMutex/OrderedRwLock constructor declares it)"
                        ),
                    });
                    ok = false;
                }
            }
            if ok {
                edges.push(Edge {
                    from: a,
                    to: b_,
                    file: src.file.clone(),
                    line: ann.line,
                    declared: true,
                });
            }
        }
    }

    // Deduplicate, check rank consistency, then cycle-check the
    // rank-consistent remainder (inverted edges are already reported;
    // keeping them out of the graph avoids double-reporting a 2-cycle).
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut consistent: Vec<Edge> = Vec::new();
    for edge in edges {
        if !seen.insert((edge.from.clone(), edge.to.clone())) {
            continue;
        }
        let (Some(&rf), Some(&rt)) = (classes.get(&edge.from), classes.get(&edge.to)) else {
            continue;
        };
        if rf >= rt {
            findings.push(Finding {
                rule: "lock-order",
                file: edge.file.clone(),
                line: edge.line,
                message: format!(
                    "{} edge `{}` ({rf}) -> `{}` ({rt}) inverts the rank order{}",
                    if edge.declared {
                        "declared"
                    } else {
                        "observed"
                    },
                    edge.from,
                    edge.to,
                    if seen.contains(&(edge.to.clone(), edge.from.clone())) {
                        " and closes a cycle with the reverse edge"
                    } else {
                        ""
                    }
                ),
            });
        } else {
            consistent.push(edge);
        }
    }
    if let Some(cycle) = find_cycle(&consistent) {
        let first = &consistent[0];
        findings.push(Finding {
            rule: "lock-order",
            file: first.file.clone(),
            line: first.line,
            message: format!("lock-order graph contains a cycle: {}", cycle.join(" -> ")),
        });
    }
}

/// Nearest owner identifier before a constructor site: `field:` in a
/// struct literal or `name =` in a binding, within the same statement.
fn owner_ident(code: &str, site: usize) -> Option<String> {
    let start = site.saturating_sub(250);
    let b = code.as_bytes();
    let mut i = site;
    while i > start {
        i -= 1;
        match b[i] {
            b';' | b'{' | b'}' => return None,
            b':' => {
                if i > 0 && b[i - 1] == b':' {
                    i -= 1;
                    continue;
                }
                if i + 1 < b.len() && b[i + 1] == b':' {
                    continue;
                }
                return ident_before(b, i);
            }
            b'=' => {
                // Skip ==, =>, <=, >=, !=, +=, …
                let prev = if i > 0 { b[i - 1] } else { b' ' };
                let next = if i + 1 < b.len() { b[i + 1] } else { b' ' };
                if matches!(
                    prev,
                    b'=' | b'<' | b'>' | b'!' | b'+' | b'-' | b'*' | b'/' | b'|' | b'&' | b'^'
                ) || matches!(next, b'=' | b'>')
                {
                    continue;
                }
                return ident_before(b, i);
            }
            _ => {}
        }
    }
    None
}

/// The identifier ending just before `pos` (skipping spaces).
fn ident_before(b: &[u8], pos: usize) -> Option<String> {
    let mut end = pos;
    while end > 0 && (b[end - 1] == b' ' || b[end - 1] == b'\n' || b[end - 1] == b'\t') {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(b[start - 1]) {
        start -= 1;
    }
    (start < end).then(|| String::from_utf8_lossy(&b[start..end]).into_owned())
}

#[derive(Debug)]
struct Guard {
    class: String,
    name: Option<String>,
    depth: usize,
    temp: bool,
}

/// Scans every function body in `src` for classified lock acquisitions
/// held across further acquisitions, appending an edge per nesting.
fn scan_nesting(
    src: &SourceFile,
    field_class: &BTreeMap<String, Option<String>>,
    fn_class: &BTreeMap<String, String>,
    edges: &mut Vec<Edge>,
) {
    let code = &src.code;
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find("fn ") {
        let at = from + at;
        from = at + 3;
        if at > 0 && is_ident(b[at - 1]) {
            continue;
        }
        let Some(open_rel) = code[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        // Nested `fn` inside a body will be rescanned on its own; the
        // approximation (outer guards appearing active inside a nested
        // fn) is acceptable because the codebase nests closures, not
        // fns, and closures genuinely inherit the enclosing guards.
        let close = matching_brace(b, open).unwrap_or(b.len());
        scan_body(src, open, close, field_class, fn_class, edges);
        from = close.min(b.len());
    }
}

fn scan_body(
    src: &SourceFile,
    open: usize,
    close: usize,
    field_class: &BTreeMap<String, Option<String>>,
    fn_class: &BTreeMap<String, String>,
    edges: &mut Vec<Edge>,
) {
    let code = &src.code;
    let b = code.as_bytes();
    let mut depth = 0usize;
    let mut active: Vec<Guard> = Vec::new();
    let mut i = open;
    while i < close {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                active.retain(|g| g.depth <= depth);
            }
            b';' => active.retain(|g| !(g.temp && g.depth == depth)),
            b'd' if code[i..].starts_with("drop(") && (i == 0 || !is_ident(b[i - 1])) => {
                let arg: String = code[i + 5..close.min(i + 60)]
                    .chars()
                    .take_while(|c| is_ident(*c as u8))
                    .collect();
                active.retain(|g| g.name.as_deref() != Some(arg.as_str()));
            }
            b'.' => {
                let method = ["lock()", "read()", "write()"]
                    .iter()
                    .find(|m| code[i + 1..].starts_with(**m));
                if let Some(method) = method {
                    if let Some(class) = resolve_receiver(b, i, field_class, fn_class) {
                        let line = line_of(code, i);
                        for g in &active {
                            edges.push(Edge {
                                from: g.class.clone(),
                                to: class.clone(),
                                file: src.file.clone(),
                                line,
                                declared: false,
                            });
                        }
                        // A chained call (`.lock().get(..)`) means the
                        // binding (if any) holds the chain's result, not
                        // the guard — the guard dies at the statement end.
                        let after = i + 1 + method.len();
                        let chained = code[after.min(close)..close].trim_start().starts_with('.');
                        let binding = if chained {
                            None
                        } else {
                            let_binding(code, open, i)
                        };
                        active.push(Guard {
                            class,
                            temp: binding.is_none(),
                            name: binding,
                            depth,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Resolves the receiver of `.lock()`/`.read()`/`.write()` at the `.`
/// to a lock class: an identifier (field or local named like a
/// classified field) or a call to a classified accessor fn.
fn resolve_receiver(
    b: &[u8],
    dot: usize,
    field_class: &BTreeMap<String, Option<String>>,
    fn_class: &BTreeMap<String, String>,
) -> Option<String> {
    let mut i = dot;
    // Skip a trailing index `[...]` back to its opening bracket.
    while i > 0 && (b[i - 1] == b']' || b[i - 1] == b')') {
        let (open_c, close_c) = if b[i - 1] == b']' {
            (b'[', b']')
        } else {
            (b'(', b')')
        };
        let mut depth = 0usize;
        let mut j = i;
        while j > 0 {
            j -= 1;
            if b[j] == close_c {
                depth += 1;
            } else if b[j] == open_c {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if close_c == b')' {
            // A call: the ident before the parens is a function name.
            let name = ident_before(b, j)?;
            return fn_class.get(&name).cloned();
        }
        i = j;
    }
    let name = ident_before(b, i)?;
    field_class.get(&name).cloned().flatten()
}

/// If the statement containing position `at` starts with `let [mut] x`,
/// returns `x` — the guard binding that keeps the lock held past the
/// statement.
fn let_binding(code: &str, body_open: usize, at: usize) -> Option<String> {
    let b = code.as_bytes();
    let mut start = at;
    while start > body_open {
        match b[start - 1] {
            b';' | b'{' | b'}' => break,
            _ => start -= 1,
        }
    }
    let stmt = code[start..at].trim_start();
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| is_ident(*c as u8))
        .collect();
    (!name.is_empty()).then_some(name)
}

/// A cycle in the edge graph, as a class path, if any.
fn find_cycle(edges: &[Edge]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        on_path.insert(start);
        while let Some((node, next)) = stack.last_mut() {
            let succs = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let succ = succs[*next];
                *next += 1;
                if on_path.contains(succ) {
                    let from = path.iter().position(|&n| n == succ).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[from..].iter().map(|s| s.to_string()).collect();
                    cycle.push(succ.to_string());
                    return Some(cycle);
                }
                if !done.contains(succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                    on_path.insert(succ);
                }
            } else {
                done.insert(node);
                on_path.remove(*node);
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Pass 2: panic-path

/// Request-serving files audited for panic reachability.
const PANIC_AUDIT_FILES: &[&str] = &[
    "engine.rs",
    "server.rs",
    "pool.rs",
    "session.rs",
    "guard.rs",
];

fn pass_panic_path(ws: &Workspace, findings: &mut Vec<Finding>) {
    for src in &ws.service_src {
        let audited = PANIC_AUDIT_FILES
            .iter()
            .any(|f| src.file.ends_with(&format!("/{f}")));
        if !audited {
            continue;
        }
        let allowed = allowed_lines(src);
        let code = &src.code;
        let b = code.as_bytes();
        for needle in [
            ".unwrap()",
            ".expect(",
            "panic!(",
            "unreachable!(",
            "todo!(",
            "unimplemented!(",
        ] {
            let mut from = 0;
            while let Some(at) = code[from..].find(needle) {
                let at = from + at;
                from = at + needle.len();
                if !needle.starts_with('.') && at > 0 && is_ident(b[at - 1]) {
                    continue; // e.g. `debug_panic!` or a suffix match
                }
                let line = line_of(code, at);
                if allowed.contains(&line) {
                    continue;
                }
                findings.push(Finding {
                    rule: "panic-path",
                    file: src.file.clone(),
                    line,
                    message: format!(
                        "`{}` in a request-serving path: return a typed internal error, or annotate `// analyze: allow(panic, reason)` if provably unreachable",
                        needle.trim_end_matches(['(', ')'])
                    ),
                });
            }
        }
        // Slice/array indexing: `expr[…]` panics on out-of-bounds.
        for (i, &c) in b.iter().enumerate() {
            if c != b'[' {
                continue;
            }
            let Some(prev) = (i > 0).then(|| b[i - 1]) else {
                continue;
            };
            if !(is_ident(prev) || prev == b')' || prev == b']') {
                continue;
            }
            // `#[attr]` and types never have an ident directly before
            // `[`; macro brackets like `vec![…]` do (`!` excluded).
            let line = line_of(code, i);
            if allowed.contains(&line) {
                continue;
            }
            findings.push(Finding {
                rule: "panic-path",
                file: src.file.clone(),
                line,
                message: "slice/array index in a request-serving path can panic out-of-bounds: use get()/annotate `// analyze: allow(panic, reason)` if the bound is provable".to_string(),
            });
        }
    }
}

/// Lines covered by an `// analyze: allow(panic, …)` annotation: the
/// annotation's own line, plus (for a comment on its own line) the
/// following statement through its terminating `;`/`{`.
fn allowed_lines(src: &SourceFile) -> BTreeSet<usize> {
    let mut allowed = BTreeSet::new();
    let lines: Vec<&str> = src.code.lines().collect();
    for ann in &src.annotations {
        if !ann.text.starts_with("allow(panic") {
            continue;
        }
        allowed.insert(ann.line);
        // Find the next line with code, then extend through the end of
        // that statement (the first line containing `;` or `{`).
        let mut l = ann.line; // 1-based; lines[l] is the next line
        while l < lines.len() && lines[l].trim().is_empty() {
            l += 1;
        }
        let mut covered = 0;
        while l < lines.len() && covered < 8 {
            allowed.insert(l + 1);
            if lines[l].contains(';') || lines[l].contains('{') {
                break;
            }
            l += 1;
            covered += 1;
        }
    }
    allowed
}

// ---------------------------------------------------------------------
// Pass 3: stats-drift

fn pass_stats_drift(ws: &Workspace, findings: &mut Vec<Finding>) {
    let Some(metrics) = ws
        .service_src
        .iter()
        .find(|s| s.file.ends_with("/metrics.rs"))
    else {
        return;
    };
    let Some(cat_at) = metrics.code.find("COUNTER_CATALOG") else {
        findings.push(Finding {
            rule: "stats-drift",
            file: metrics.file.clone(),
            line: 1,
            message: "metrics.rs has no COUNTER_CATALOG contract table".to_string(),
        });
        return;
    };
    let cat_end = metrics.code[cat_at..]
        .find("];")
        .map(|x| cat_at + x)
        .unwrap_or(metrics.code.len());
    let rows: Vec<&StrLit> = metrics
        .strings
        .iter()
        .filter(|s| s.pos > cat_at && s.pos < cat_end)
        .collect();
    if !rows.len().is_multiple_of(2) {
        findings.push(Finding {
            rule: "stats-drift",
            file: metrics.file.clone(),
            line: line_of(&metrics.code, cat_at),
            message: "COUNTER_CATALOG has an odd number of strings (rows must be (stats_path, prometheus_series) pairs)".to_string(),
        });
        return;
    }
    let catalog: Vec<(&StrLit, &StrLit)> = rows.chunks(2).map(|pair| (pair[0], pair[1])).collect();
    let stats_paths: BTreeSet<&str> = catalog.iter().map(|(p, _)| p.value.as_str()).collect();
    let segments: BTreeSet<&str> = catalog
        .iter()
        .map(|(p, _)| p.value.rsplit('.').next().unwrap_or(&p.value))
        .collect();
    let proms: BTreeSet<&str> = catalog.iter().map(|(_, m)| m.value.as_str()).collect();

    // Catalog -> README: both names of every row must be documented.
    for (path, prom) in &catalog {
        let mut missing = Vec::new();
        if !ws.readme.contains(&prom.value) {
            missing.push(format!("Prometheus series `{}`", prom.value));
        }
        let segment = path.value.rsplit('.').next().unwrap_or(&path.value);
        if !ws.readme.contains(segment) {
            missing.push(format!("stats field `{segment}`"));
        }
        if !missing.is_empty() {
            findings.push(Finding {
                rule: "stats-drift",
                file: metrics.file.clone(),
                line: path.line,
                message: format!(
                    "catalog row (`{}`, `{}`) is not documented in crates/service/README.md: missing {}",
                    path.value,
                    prom.value,
                    missing.join(" and ")
                ),
            });
        }
    }

    // Source -> catalog: counter-like literals must be cataloged.
    // `// analyze: allow(drift, reason)` suppresses a literal that only
    // looks like a counter (e.g. a response payload field).
    for src in &ws.service_src {
        let suppressed: BTreeSet<usize> = src
            .annotations
            .iter()
            .filter(|a| a.text.starts_with("allow(drift"))
            .flat_map(|a| [a.line, a.line + 1])
            .collect();
        for lit in &src.strings {
            let v = lit.value.as_str();
            let counter_like = v.as_bytes().first().is_some_and(u8::is_ascii_lowercase)
                && v.bytes().all(|c| {
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_' || c == b'.'
                })
                && (v.ends_with("_total") || v.starts_with("srank_"));
            if !counter_like || suppressed.contains(&lit.line) {
                continue;
            }
            let known = stats_paths.contains(v)
                || segments.contains(v)
                || proms.contains(v)
                || proms.contains(format!("srank_{v}").as_str());
            if !known {
                findings.push(Finding {
                    rule: "stats-drift",
                    file: src.file.clone(),
                    line: lit.line,
                    message: format!(
                        "counter-like literal \"{v}\" is not in COUNTER_CATALOG — add a (stats_path, prometheus_series) row and document both names in the README"
                    ),
                });
            }
        }
    }

    // README -> catalog: documented series must exist. Fenced code
    // blocks are skipped (log/CLI examples, not series claims), as are
    // `srank_x=…` tokens (log-filter syntax, not series names).
    let mut reported: BTreeSet<String> = BTreeSet::new();
    let mut in_fence = false;
    let mut prose = String::with_capacity(ws.readme.len());
    for line in ws.readme.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
        }
        prose.push_str(if in_fence || line.trim_start().starts_with("```") {
            ""
        } else {
            line
        });
        prose.push('\n');
    }
    let mut from = 0;
    while let Some(at) = prose[from..].find("srank_") {
        let at = from + at;
        let token: String = prose[at..]
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        from = at + token.len().max(1);
        if prose[at + token.len()..].starts_with('=') {
            continue;
        }
        let base_ok = proms.contains(token.as_str())
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                token
                    .strip_suffix(suffix)
                    .is_some_and(|base| proms.contains(base))
            });
        if !base_ok && reported.insert(token.clone()) {
            let line = prose[..at].bytes().filter(|&c| c == b'\n').count() + 1;
            findings.push(Finding {
                rule: "stats-drift",
                file: "crates/service/README.md".to_string(),
                line,
                message: format!(
                    "README documents Prometheus series `{token}` which is not in COUNTER_CATALOG"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Pass 4: wire-op conformance

fn pass_wire_op(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Op strings from the engine dispatch match.
    let Some(engine) = ws
        .service_src
        .iter()
        .find(|s| s.file.ends_with("/engine.rs"))
    else {
        return;
    };
    let Some(dispatch_at) = engine.code.find("fn dispatch_op") else {
        findings.push(Finding {
            rule: "wire-op",
            file: engine.file.clone(),
            line: 1,
            message: "engine.rs has no dispatch_op function".to_string(),
        });
        return;
    };
    let Some(open_rel) = engine.code[dispatch_at..].find('{') else {
        return;
    };
    let open = dispatch_at + open_rel;
    let close = matching_brace(engine.code.as_bytes(), open).unwrap_or(engine.code.len());
    let ops: Vec<&StrLit> = engine
        .strings
        .iter()
        .filter(|s| s.pos > open && s.pos < close)
        .filter(|s| engine.code[s.end..].trim_start().starts_with("=>"))
        .collect();

    for op in &ops {
        let mut missing = Vec::new();
        if !ws.readme.contains(&format!("**`{}`**", op.value)) {
            missing.push("a README protocol entry (`**`op`**` heading)".to_string());
        }
        let quoted = format!("\"{}\"", op.value);
        if !ws
            .service_tests
            .iter()
            .any(|(_, text)| text.contains(&quoted))
        {
            missing.push("test coverage (no crates/service/tests file mentions it)".to_string());
        }
        if !missing.is_empty() {
            findings.push(Finding {
                rule: "wire-op",
                file: engine.file.clone(),
                line: op.line,
                message: format!(
                    "wire op \"{}\" is missing {}",
                    op.value,
                    missing.join(" and ")
                ),
            });
        }
    }

    // Error codes: README table == proto.rs canonical list.
    let Some(proto) = ws
        .service_src
        .iter()
        .find(|s| s.file.ends_with("/proto.rs"))
    else {
        return;
    };
    let mut typed: BTreeSet<String> = BTreeSet::new();
    if let Some(as_str_at) = proto.code.find("fn as_str") {
        if let Some(open_rel) = proto.code[as_str_at..].find('{') {
            let open = as_str_at + open_rel;
            let close = matching_brace(proto.code.as_bytes(), open).unwrap_or(proto.code.len());
            typed = proto
                .strings
                .iter()
                .filter(|s| s.pos > open && s.pos < close)
                .map(|s| s.value.clone())
                .collect();
        }
    }
    if typed.is_empty() {
        findings.push(Finding {
            rule: "wire-op",
            file: proto.file.clone(),
            line: 1,
            message:
                "proto.rs has no ErrorCode::as_str arms to define the canonical error-code list"
                    .to_string(),
        });
        return;
    }
    let mut documented: BTreeMap<String, usize> = BTreeMap::new();
    let mut in_table = false;
    for (i, line) in ws.readme.lines().enumerate() {
        if line.trim_start().starts_with("### Error codes") {
            in_table = true;
            continue;
        }
        if in_table {
            let t = line.trim();
            if t.starts_with("| `") {
                if let Some(code) = t.trim_start_matches("| `").split('`').next() {
                    documented.insert(code.to_string(), i + 1);
                }
            } else if t.starts_with("###") || (!t.is_empty() && !t.starts_with('|')) {
                in_table = false;
            }
        }
    }
    for code in &typed {
        if !documented.contains_key(code) {
            findings.push(Finding {
                rule: "wire-op",
                file: "crates/service/README.md".to_string(),
                line: 1,
                message: format!(
                    "error code `{code}` (ErrorCode::as_str) is missing from the README error-code table"
                ),
            });
        }
    }
    for (code, line) in &documented {
        if !typed.contains(code) {
            findings.push(Finding {
                rule: "wire-op",
                file: "crates/service/README.md".to_string(),
                line: *line,
                message: format!(
                    "README error-code table documents `{code}` which is not a typed ErrorCode"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Pass 5: dead-counter

/// Mutation evidence accepted for a catalog leaf: the leaf identifier
/// immediately followed (after optional whitespace — rustfmt may break
/// the chain across lines) by one of these.
const MUTATION_SUFFIXES: &[&str] = &[
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_max(",
    ".fetch_min(",
    ".store(",
    ".record(",
    "+=",
    "-=",
];

/// Whether `leaf` appears anywhere in `code` as a standalone identifier
/// directly followed by a mutation suffix.
fn leaf_is_mutated(code: &str, leaf: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find(leaf) {
        let at = from + at;
        from = at + leaf.len();
        if at > 0 && is_ident(b[at - 1]) {
            continue; // suffix of a longer identifier
        }
        let after = code[at + leaf.len()..].trim_start();
        if MUTATION_SUFFIXES.iter().any(|s| after.starts_with(s)) {
            return true;
        }
    }
    false
}

fn pass_dead_counter(ws: &Workspace, findings: &mut Vec<Finding>) {
    let Some(metrics) = ws
        .service_src
        .iter()
        .find(|s| s.file.ends_with("/metrics.rs"))
    else {
        return;
    };
    let Some(cat_at) = metrics.code.find("COUNTER_CATALOG") else {
        return; // stats-drift already reports the missing table
    };
    let cat_end = metrics.code[cat_at..]
        .find("];")
        .map(|x| cat_at + x)
        .unwrap_or(metrics.code.len());
    let rows: Vec<&StrLit> = metrics
        .strings
        .iter()
        .filter(|s| s.pos > cat_at && s.pos < cat_end)
        .collect();
    if !rows.len().is_multiple_of(2) {
        return; // stats-drift already reports the malformed table
    }
    // An annotation covers its own line plus the two following lines:
    // the row it precedes may be rustfmt-wrapped, putting the path
    // literal one line below the row's opening paren.
    let suppressed: BTreeSet<usize> = metrics
        .annotations
        .iter()
        .filter(|a| a.text.starts_with("allow(dead-counter"))
        .flat_map(|a| [a.line, a.line + 1, a.line + 2])
        .collect();
    for pair in rows.chunks(2) {
        let (path, prom) = (pair[0], pair[1]);
        if suppressed.contains(&path.line) {
            continue;
        }
        let leaf = path.value.rsplit('.').next().unwrap_or(&path.value);
        if leaf.is_empty() {
            continue;
        }
        let mutated = ws
            .service_src
            .iter()
            .any(|src| leaf_is_mutated(&src.code, leaf));
        if !mutated {
            findings.push(Finding {
                rule: "dead-counter",
                file: metrics.file.clone(),
                line: path.line,
                message: format!(
                    "catalog row (`{}`, `{}`) has no mutation evidence: nothing in crates/service/src increments or assigns `{leaf}` — remove the row, or annotate `// analyze: allow(dead-counter, reason)` if the value is computed at read time",
                    path.value, prom.value
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Entry point

/// Runs all five passes over the workspace rooted at `root`, returning
/// findings sorted by (file, line, rule). `Err` means the root does not
/// look like the workspace (missing directories/files), not a finding.
pub fn analyze(root: &Path) -> Result<Vec<Finding>, String> {
    let ws = load(root)?;
    let mut findings = Vec::new();
    pass_lock_order(&ws, &mut findings);
    pass_panic_path(&ws, &mut findings);
    pass_stats_drift(&ws, &mut findings);
    pass_wire_op(&ws, &mut findings);
    pass_dead_counter(&ws, &mut findings);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Renders findings as a JSON array (stable field order), without any
/// external dependency.
pub fn to_json(findings: &[Finding]) -> String {
    let escape = |s: &str| {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    };
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                f.rule,
                escape(&f.file),
                f.line,
                escape(&f.message)
            )
        })
        .collect();
    if rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n]", rows.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_blanks_comments_and_strings() {
        let src = lex(
            "t.rs",
            "let a = \"lit\"; // analyze: allow(panic, x)\nlet b = 'c'; /* multi\nline */ let c = r#\"raw\"#;",
        );
        assert!(src.code.contains("let a ="));
        assert!(!src.code.contains("lit"));
        assert!(!src.code.contains("multi"));
        assert_eq!(src.strings.len(), 2);
        assert_eq!(src.strings[0].value, "lit");
        assert_eq!(src.strings[1].value, "raw");
        assert_eq!(src.annotations.len(), 1);
        assert_eq!(src.annotations[0].text, "allow(panic, x)");
        assert_eq!(src.code.lines().count(), 3);
    }

    #[test]
    fn test_blocks_are_stripped() {
        let src = lex(
            "t.rs",
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); \"s\" }\n}\n",
        );
        assert!(src.code.contains("x.unwrap()"));
        assert!(!src.code.contains("y.unwrap()"));
        assert!(src.strings.is_empty());
    }

    #[test]
    fn line_continuation_escapes_keep_line_numbers_aligned() {
        let src = lex(
            "t.rs",
            "let a = \"one \\\n    two\";\n// analyze: allow(panic, x)\n",
        );
        assert_eq!(src.annotations.len(), 1);
        assert_eq!(src.annotations[0].line, 3);
    }

    #[test]
    fn cycle_detection_finds_a_loop() {
        let mk = |from: &str, to: &str| Edge {
            from: from.into(),
            to: to.into(),
            file: "f".into(),
            line: 1,
            declared: false,
        };
        assert!(find_cycle(&[mk("a", "b"), mk("b", "c")]).is_none());
        let cycle = find_cycle(&[mk("a", "b"), mk("b", "c"), mk("c", "a")]).unwrap();
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn owner_attribution_reads_fields_and_lets() {
        let code = "Self { results: OrderedMutex::new(rank::A, ";
        let site = code.find("OrderedMutex").unwrap();
        assert_eq!(owner_ident(code, site).as_deref(), Some("results"));
        let code = "let writer = OrderedMutex::new(rank::B, ";
        let site = code.find("OrderedMutex").unwrap();
        assert_eq!(owner_ident(code, site).as_deref(), Some("writer"));
        let code = "shards: (0..N).map(|_| OrderedMutex::new(rank::C, ";
        let site = code.find("OrderedMutex").unwrap();
        assert_eq!(owner_ident(code, site).as_deref(), Some("shards"));
    }
}
