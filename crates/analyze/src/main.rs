//! CLI for `srank-analyze`. Exit status 0 means a clean tree; 1 means
//! findings (printed one per line, or as JSON with `--json`); 2 means
//! usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("srank-analyze: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: srank-analyze [--root DIR] [--json]\n\n\
                     Static analysis gates for the stable-rankings workspace:\n\
                     lock-order, panic-path, stats-drift, wire-op.\n\
                     Exits 1 if any finding is reported."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("srank-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match srank_analyze::analyze(&root) {
        Ok(findings) => {
            if json {
                println!("{}", srank_analyze::to_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                if !findings.is_empty() {
                    eprintln!(
                        "srank-analyze: {} finding{}",
                        findings.len(),
                        if findings.len() == 1 { "" } else { "s" }
                    );
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("srank-analyze: {err}");
            ExitCode::from(2)
        }
    }
}
