//! Self-tests for `srank-analyze`: each seeded-violation fixture must
//! produce exactly one finding with the right rule id, the clean
//! fixture (and the real tree) must produce none.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> Vec<srank_analyze::Finding> {
    srank_analyze::analyze(&fixture(name)).expect("fixture tree loads")
}

#[test]
fn clean_fixture_has_zero_findings() {
    let findings = run("clean");
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
}

#[test]
fn lock_cycle_fixture_yields_one_lock_order_finding() {
    let findings = run("lock_cycle");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "lock-order");
    assert!(
        findings[0].message.contains("inverts the rank order"),
        "message: {}",
        findings[0].message
    );
    assert!(findings[0].file.ends_with("foo.rs"));
}

#[test]
fn panic_path_fixture_yields_one_panic_path_finding() {
    let findings = run("panic_path");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "panic-path");
    assert!(
        findings[0].message.contains("`.unwrap`"),
        "message: {}",
        findings[0].message
    );
    assert!(findings[0].file.ends_with("engine.rs"));
}

#[test]
fn stats_drift_fixture_yields_one_stats_drift_finding() {
    let findings = run("stats_drift");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "stats-drift");
    assert!(
        findings[0].message.contains("pool.retries_total"),
        "message: {}",
        findings[0].message
    );
}

#[test]
fn undocumented_op_fixture_yields_one_wire_op_finding() {
    let findings = run("undocumented_op");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "wire-op");
    assert!(
        findings[0].message.contains("\"trace\""),
        "message: {}",
        findings[0].message
    );
}

#[test]
fn dead_counter_fixture_yields_one_dead_counter_finding() {
    let findings = run("dead_counter");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "dead-counter");
    assert!(
        findings[0].message.contains("pool.stalls"),
        "message: {}",
        findings[0].message
    );
    assert!(findings[0].file.ends_with("metrics.rs"));
}

#[test]
fn real_tree_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = srank_analyze::analyze(&root).expect("workspace root loads");
    assert!(findings.is_empty(), "real tree flagged: {findings:#?}");
}

#[test]
fn json_output_is_well_formed() {
    let findings = run("panic_path");
    let json = srank_analyze::to_json(&findings);
    assert!(json.starts_with("[\n") && json.ends_with("\n]"), "{json}");
    assert!(json.contains("\"rule\": \"panic-path\""), "{json}");
    assert_eq!(srank_analyze::to_json(&[]), "[]");
}
