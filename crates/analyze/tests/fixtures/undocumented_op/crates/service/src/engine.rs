pub fn dispatch_op(op: &str) -> u32 {
    match op {
        "ping" => 1,
        "stats" => 2,
        "trace" => 3,
        _ => 0,
    }
}
