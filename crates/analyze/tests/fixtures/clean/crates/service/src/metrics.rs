/// Contract table: (stats path, Prometheus series).
pub const COUNTER_CATALOG: &[(&str, &str)] = &[
    ("pool.jobs", "srank_pool_jobs_total"),
];
