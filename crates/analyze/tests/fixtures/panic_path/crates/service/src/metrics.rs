/// Contract table: (stats path, Prometheus series).
pub const COUNTER_CATALOG: &[(&str, &str)] = &[
    ("pool.jobs", "srank_pool_jobs_total"),
];

pub fn note_job(jobs: &std::sync::atomic::AtomicU64) {
    jobs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
