#[test]
fn ops_respond() {
    let ops = ["ping", "stats"];
    assert_eq!(ops.len(), 2);
}
