pub fn dispatch_op(op: &str) -> u32 {
    match op {
        "ping" => 1,
        "stats" => 2,
        _ => 0,
    }
}
