//! Fixture rank table mirroring the real lock hierarchy shape.
pub mod rank {
    pub const REGISTRY: u16 = 10;
    pub const CACHE: u16 = 20;
}

pub struct OrderedMutex<T> {
    value: T,
}
