pub enum ErrorCode {
    BadRequest,
    Internal,
}

impl ErrorCode {
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Internal => "internal",
        }
    }
}
