use crate::lockorder::{rank, OrderedMutex};

pub struct Foo {
    registry: OrderedMutex<u32>,
    cache: OrderedMutex<u32>,
}

impl Foo {
    pub fn new() -> Self {
        Self {
            registry: OrderedMutex::new(rank::REGISTRY, "registry", 0),
            cache: OrderedMutex::new(rank::CACHE, "cache", 0),
        }
    }

    pub fn bump(&self) {
        let reg = self.registry.lock();
        let mut cache = self.cache.lock();
    }
}
