//! Offline shim of `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range strategies over `f64`/integers, `prop::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; reproduce by pasting them into a unit test.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name (FNV-1a), so failures reproduce run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A value generator. Upstream proptest separates strategies from
    /// value trees (for shrinking); the shim generates directly.
    pub trait Strategy {
        type Value: std::fmt::Debug;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + (self.end - self.start) * rng.random::<f64>()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.random::<u64>() % span) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.random::<u64>() % span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    /// Constant strategy (upstream `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// String strategies from a regex-like pattern, as upstream proptest
    /// provides for `&str`. The shim supports the subset used by this
    /// workspace's fuzz-style tests: a sequence of units — `\PC` (any
    /// non-control character), a character class `[...]` (literal chars,
    /// `a-z` ranges, and `\PC`), or a literal character — each optionally
    /// followed by a `{lo,hi}` repetition.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let units = parse_pattern(self);
            let mut out = String::new();
            for (unit, lo, hi) in units {
                let n = lo + (rng.random::<u64>() as usize) % (hi - lo + 1);
                for _ in 0..n {
                    out.push(unit.generate(rng));
                }
            }
            out
        }
    }

    #[derive(Clone, Debug)]
    enum CharUnit {
        Printable,
        Literal(char),
        Class(Vec<CharUnit>),
    }

    impl CharUnit {
        fn generate(&self, rng: &mut StdRng) -> char {
            match self {
                CharUnit::Literal(c) => *c,
                CharUnit::Printable => random_printable(rng),
                CharUnit::Class(units) => {
                    let pick = (rng.random::<u64>() as usize) % units.len();
                    units[pick].generate(rng)
                }
            }
        }
    }

    fn random_printable(rng: &mut StdRng) -> char {
        // Mostly ASCII printables, with an occasional non-ASCII scalar to
        // exercise UTF-8 handling; never a control character.
        if rng.random::<f64>() < 0.9 {
            char::from(b' ' + (rng.random::<u64>() % 95) as u8)
        } else {
            const EXOTIC: &[char] = &['é', 'ß', '漢', 'Ω', '→', '🦀', '"', '\'', '\u{00A0}'];
            EXOTIC[(rng.random::<u64>() as usize) % EXOTIC.len()]
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<(CharUnit, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let unit = match chars[i] {
                '\\' => {
                    let unit = parse_escape(&chars, &mut i);
                    i += 1;
                    unit
                }
                '[' => {
                    i += 1;
                    let mut class = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if chars[i] == '\\' {
                            class.push(parse_escape(&chars, &mut i));
                            i += 1;
                        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']'
                        {
                            let (a, b) = (chars[i], chars[i + 2]);
                            for c in a..=b {
                                class.push(CharUnit::Literal(c));
                            }
                            i += 3;
                        } else {
                            class.push(CharUnit::Literal(chars[i]));
                            i += 1;
                        }
                    }
                    i += 1; // ']'
                    assert!(!class.is_empty(), "empty character class in '{pattern}'");
                    CharUnit::Class(class)
                }
                c => {
                    i += 1;
                    CharUnit::Literal(c)
                }
            };
            // Optional {lo,hi} repetition.
            let (mut lo, mut hi) = (1usize, 1usize);
            if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (l, h) = body
                    .split_once(',')
                    .unwrap_or((body.as_str(), body.as_str()));
                lo = l.trim().parse().expect("repetition lower bound");
                hi = h.trim().parse().expect("repetition upper bound");
                i = close + 1;
            }
            units.push((unit, lo, hi));
        }
        units
    }

    /// Parses the escape starting at `chars[*i] == '\\'`, leaving `*i` on
    /// the last consumed character.
    fn parse_escape(chars: &[char], i: &mut usize) -> CharUnit {
        match chars.get(*i + 1) {
            Some('P') | Some('p') => {
                // `\PC` / `\pC`-style category escape: treat as printable.
                *i += 2;
                CharUnit::Printable
            }
            Some('n') => {
                *i += 1;
                CharUnit::Literal('\n')
            }
            Some('t') => {
                *i += 1;
                CharUnit::Literal('\t')
            }
            Some(&c) => {
                *i += 1;
                CharUnit::Literal(c)
            }
            None => CharUnit::Literal('\\'),
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A length spec: an exact length or a half-open range.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// `prop::collection::vec(element, len)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        #[derive(Clone, Copy, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let n = self.size.lo + (rng.random::<u64>() % span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 128,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw fresh inputs, don't count the case.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

/// Drives one property: draws inputs, runs the body, panics on failure
/// with the inputs that produced it.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
) {
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s): {msg}\n\
                     inputs: {inputs}"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The proptest entry macro: an optional config header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(&($cfg), stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} == {:?}", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {:?} != {:?}", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.25..0.75f64, n in 3u64..9, k in 1usize..4) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&k));
        }

        #[test]
        fn vec_lengths_respect_spec(v in prop::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn nested_vec_and_assume(v in prop::collection::vec(prop::collection::vec(-1.0..1.0f64, 3), 1..4)) {
            prop_assume!(!v.is_empty());
            prop_assert_eq!(v[0].len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_| {
            (
                "x = 1; ".to_string(),
                Err(crate::TestCaseError::Fail("boom".into())),
            )
        });
    }
}
