//! Offline shim of `serde`'s `Serialize` surface.
//!
//! Instead of serde's visitor data model, serialization goes through a
//! plain JSON [`Value`] tree: `Serialize::to_value` produces a `Value`,
//! and the `serde_json` shim renders/parses it. `#[derive(Serialize)]`
//! comes from the sibling `serde_derive` shim.

// The derive expands to `::serde::...` paths; alias self so the derive
// also works inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A JSON value. Object fields keep insertion order (derive order).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object-field or array-index lookup, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64` when it is a non-negative integer exactly
    /// representable in an `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Point {
        x: f64,
        y: f64,
        tags: Vec<String>,
    }

    #[derive(Serialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn derive_struct_preserves_field_order() {
        let p = Point {
            x: 1.0,
            y: 2.5,
            tags: vec!["a".into()],
        };
        let v = p.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "x");
        assert_eq!(obj[1].0, "y");
        assert_eq!(v.get("y").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn derive_unit_enum_serializes_variant_name() {
        assert_eq!(Kind::Alpha.to_value(), Value::String("Alpha".into()));
        assert_eq!(Kind::Beta.to_value(), Value::String("Beta".into()));
    }

    #[test]
    fn option_and_ints() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(3u32).to_value(), Value::Number(3.0));
        assert_eq!(Value::Number(3.0).as_u64(), Some(3));
        assert_eq!(Value::Number(3.5).as_u64(), None);
    }
}
