//! Offline shim of `criterion`.
//!
//! A small wall-clock harness with criterion's API shape: groups, benchmark
//! ids, `iter` / `iter_batched`. No statistics machinery — each benchmark
//! is timed over a fixed number of sampled runs and the mean/min are
//! printed, which is enough for the figure scripts and for eyeballing
//! regressions offline.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup. The shim runs one routine call per
/// setup either way; the variants exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Upstream reads CLI args (filters, `--bench`); the shim keeps the
    /// first free argument as a substring filter and ignores harness flags.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            filter,
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(2),
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    filter: Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&label);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Times closures; collects per-call durations.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` on fresh values from `setup` (setup not timed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup())); // warm-up
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        println!(
            "{label:<48} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_and_batched_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        g.bench_function(BenchmarkId::from_parameter(10), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("sum", 5), &5u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
