//! Offline shim of `serde_derive`: a hand-rolled `#[derive(Serialize)]`
//! (no `syn`/`quote` — the build environment is offline), supporting the
//! shapes this workspace actually derives on:
//!
//! * structs with named fields → a JSON object, field order preserved;
//! * enums with unit variants → the variant name as a JSON string.
//!
//! The generated impl targets the `serde::Serialize` trait of the sibling
//! `serde` shim: `fn to_value(&self) -> serde::Value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let parsed = parse(&tokens).unwrap_or_else(|e| panic!("#[derive(Serialize)]: {e}"));
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__obj.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__obj)"
            )
        }
        Shape::UnitEnum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "Self::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                ));
            }
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        name = parsed.name
    );
    out.parse().expect("generated impl must tokenize")
}

enum Shape {
    Struct(Vec<String>),
    UnitEnum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn parse(tokens: &[TokenTree]) -> Result<Parsed, String> {
    let mut i = 0;
    // Skip attributes and visibility to find `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("no struct/enum keyword found".into()),
            Some(TokenTree::Ident(id)) if *id.to_string() == *"struct" => break "struct",
            Some(TokenTree::Ident(id)) if *id.to_string() == *"enum" => break "enum",
            _ => i += 1,
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    // Find the brace-delimited body (skipping generics, which this shim
    // does not support in a parameterized way — none of the derived types
    // here are generic).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or("expected a brace-delimited body (tuple/unit types unsupported)")?;
    let body: Vec<TokenTree> = body.into_iter().collect();
    let shape = if kind == "struct" {
        Shape::Struct(struct_fields(&body)?)
    } else {
        Shape::UnitEnum(enum_variants(&body)?)
    };
    Ok(Parsed { name, shape })
}

/// Splits the body at commas that sit outside `<...>` nesting (groups are
/// already opaque single tokens, so only angle brackets need tracking).
fn split_top_level(body: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0i32;
    for t in body {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("non-empty").push(t.clone());
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// `attrs* vis? name : type` per comma-separated part → the field names.
fn struct_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for part in split_top_level(body) {
        let mut j = 0;
        skip_attrs_and_vis(&part, &mut j);
        match (part.get(j), part.get(j + 1)) {
            (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                fields.push(id.to_string());
            }
            _ => return Err(format!("unsupported field shape: {part:?}")),
        }
    }
    Ok(fields)
}

/// `attrs* name` per comma-separated part → the variant names. Payload
/// variants are rejected.
fn enum_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for part in split_top_level(body) {
        let mut j = 0;
        skip_attrs_and_vis(&part, &mut j);
        match part.get(j) {
            Some(TokenTree::Ident(id)) if part.len() == j + 1 => variants.push(id.to_string()),
            _ => {
                return Err(format!(
                    "only unit enum variants are supported by the offline shim: {part:?}"
                ))
            }
        }
    }
    Ok(variants)
}

fn skip_attrs_and_vis(part: &[TokenTree], j: &mut usize) {
    loop {
        match part.get(*j) {
            // `#[...]`
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *j += 2,
            // `pub` or `pub(...)`
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                *j += 1;
                if let Some(TokenTree::Group(g)) = part.get(*j) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *j += 1;
                    }
                }
            }
            _ => break,
        }
    }
}
