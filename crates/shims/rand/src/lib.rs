//! Offline shim of the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *exact* API surface it uses from `rand` 0.9: [`RngCore`],
//! [`SeedableRng`], the [`Rng::random`] extension method, the
//! [`rngs::StdRng`] generator, and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `rand`'s StdRng (which is additionally documented as
//! non-portable across versions), but a high-quality generator with the
//! same determinism contract: a fixed seed yields a fixed stream.

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the standard
    /// recommendation of the xoshiro authors).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// The standard uniform distribution over a type's natural range
/// (`[0, 1)` for floats, fair coin for `bool`, full range for integers).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardUniform;

/// Types samplable from a distribution.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the high bit: low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<u64> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// One draw from the standard uniform distribution of `T`.
    #[inline]
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The generator's internal state words — the exact position in
        /// the stream. Together with [`from_state`](Self::from_state) this
        /// lets callers persist a generator mid-stream and resume it
        /// bit-for-bit (e.g. `srank-service` session checkpoints).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position captured by
        /// [`state`](Self::state). The all-zero state (never produced by a
        /// seeded generator) is remapped exactly as `from_seed` does, so a
        /// corrupted checkpoint cannot wedge xoshiro in its fixed point.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return Self::from_seed([0; 32]);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Unbiased integer in `[0, bound)` via rejection (Lemire-style).
    fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn f64_lies_in_unit_interval_and_looks_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((45_000..55_000).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle is a fixed point with ~1/100! chance"
        );
    }
}
