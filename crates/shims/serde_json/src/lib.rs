//! Offline shim of `serde_json`: renders and parses the [`Value`] tree of
//! the sibling `serde` shim. This is also the wire format implementation
//! of `srank-service`'s line-delimited JSON protocol.

pub use serde::Value;

/// A JSON syntax error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    pub msg: String,
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Compact rendering.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Pretty rendering (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(&items[i], out, indent, depth + 1)
        }),
        Value::Object(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            let (k, v) = &fields[i];
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(v, out, indent, depth + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json's arbitrary
        // precision mode would reject — callers sanitize beforehand.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs unsupported (not produced by
                            // this workspace's writer); map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy until the next structural byte. The input
                    // arrived as &str, so the bytes are valid UTF-8 and
                    // '"'/'\\' (ASCII) can never occur inside a multi-byte
                    // sequence — slicing here is safe and keeps string
                    // parsing linear.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Number).map_err(|_| Error {
            msg: format!("invalid number '{text}'"),
            offset: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = from_str(src).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_i64(),
            Some(-3)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert!(v.get("e").unwrap().is_null());
        let printed = to_string(&v).unwrap();
        assert_eq!(from_str(&printed).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v = from_str(r#"{"x": [1, {"y": "z"}]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&Value::Number(5.0)).unwrap(), "5");
        assert_eq!(to_string(&Value::Number(5.25)).unwrap(), "5.25");
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("[1] trailing").is_err());
    }
}
