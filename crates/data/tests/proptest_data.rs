//! Property-based tests for the dataset substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srank_data::{
    read_csv_str, synthetic, table_stats, Column, ColumnSpec, CorrelationKind, Direction, RawTable,
};

fn finite_rows(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1e6..1e6f64, d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Normalization always lands in [0, 1] and preserves the order of
    /// higher-preferred columns / reverses lower-preferred ones.
    #[test]
    fn normalization_is_order_preserving(rows in finite_rows(2, 2..40)) {
        let t = RawTable::new(
            "t",
            vec![Column::higher("a"), Column::lower("b")],
            rows.clone(),
        );
        let norm = t.normalized();
        prop_assert!(norm.iter().flatten().all(|v| (0.0..=1.0).contains(v)));
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                if rows[i][0] < rows[j][0] {
                    prop_assert!(norm[i][0] <= norm[j][0] + 1e-12);
                }
                // Lower-preferred column flips.
                if rows[i][1] < rows[j][1] {
                    prop_assert!(norm[i][1] >= norm[j][1] - 1e-12);
                }
            }
        }
    }

    /// Projection then normalization equals normalization then column
    /// selection (min-max is per-column).
    #[test]
    fn projection_commutes_with_normalization(rows in finite_rows(3, 2..25)) {
        let t = RawTable::new(
            "t",
            vec![Column::higher("a"), Column::higher("b"), Column::higher("c")],
            rows,
        );
        let direct = t.project(&[2, 0]).normalized();
        let full = t.normalized();
        for (i, row) in direct.iter().enumerate() {
            prop_assert!((row[0] - full[i][2]).abs() < 1e-12);
            prop_assert!((row[1] - full[i][0]).abs() < 1e-12);
        }
    }

    /// Sampling rows never invents values and respects the requested size.
    #[test]
    fn row_sampling_is_a_subset(rows in finite_rows(2, 5..60), seed in 0u64..1000, frac in 0.1..0.9f64) {
        let t = RawTable::new("t", vec![Column::higher("a"), Column::higher("b")], rows.clone());
        let n = ((rows.len() as f64) * frac).max(1.0) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let s = t.sample_rows(&mut rng, n);
        prop_assert_eq!(s.n_rows(), n.min(rows.len()));
        for r in &s.rows {
            prop_assert!(rows.contains(r));
        }
    }

    /// Correlation is symmetric and bounded.
    #[test]
    fn correlation_is_symmetric(rows in finite_rows(2, 3..50)) {
        let t = RawTable::new("t", vec![Column::higher("a"), Column::higher("b")], rows);
        if let (Some(ab), Some(ba)) = (t.correlation(0, 1), t.correlation(1, 0)) {
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        }
    }

    /// CSV writing-equivalent text parses back to the same numbers.
    #[test]
    fn csv_roundtrip(rows in finite_rows(2, 1..30)) {
        let mut text = String::from("a,b\n");
        for r in &rows {
            text.push_str(&format!("{},{}\n", r[0], r[1]));
        }
        let t = read_csv_str(
            "t",
            &text,
            &[ColumnSpec::higher("a"), ColumnSpec::lower("b")],
        ).unwrap();
        prop_assert_eq!(t.n_rows(), rows.len());
        for (parsed, original) in t.rows.iter().zip(&rows) {
            prop_assert!((parsed[0] - original[0]).abs() < 1e-9 * original[0].abs().max(1.0));
            prop_assert!((parsed[1] - original[1]).abs() < 1e-9 * original[1].abs().max(1.0));
        }
        prop_assert_eq!(t.columns[1].direction, Direction::LowerIsBetter);
    }

    /// Synthetic generators always fill the unit cube at any (n, d, kind).
    #[test]
    fn synthetic_generators_are_well_formed(
        seed in 0u64..500,
        n in 1usize..200,
        d in 2usize..5,
        kind_idx in 0usize..3,
    ) {
        let kind = [
            CorrelationKind::Independent,
            CorrelationKind::Correlated,
            CorrelationKind::AntiCorrelated,
        ][kind_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let t = synthetic(&mut rng, kind, n, d);
        prop_assert_eq!(t.n_rows(), n);
        prop_assert_eq!(t.n_cols(), d);
        prop_assert!(t.rows.iter().flatten().all(|v| (0.0..=1.0).contains(v)));
    }

    /// The CSV parser never panics on arbitrary input — it either parses
    /// or returns a structured error (fuzz-style robustness).
    #[test]
    fn csv_parser_never_panics(text in "\\PC{0,300}") {
        let _ = read_csv_str("fuzz", &text, &[ColumnSpec::higher("a")]);
    }

    /// Same for input that looks like a CSV but with arbitrary field
    /// contents, including quotes and commas.
    #[test]
    fn csv_parser_never_panics_on_structured_garbage(
        fields in prop::collection::vec("[\\PC]{0,12}", 1..8),
    ) {
        let header = "a,b,c";
        let line = fields.join(",");
        let text = format!("{header}\n{line}\n");
        let _ = read_csv_str("fuzz", &text, &[ColumnSpec::higher("b")]);
    }

    /// Table stats invariants: min ≤ mean ≤ max and zero std only for
    /// constant columns.
    #[test]
    fn stats_invariants(rows in finite_rows(2, 1..50)) {
        let t = RawTable::new("t", vec![Column::higher("a"), Column::higher("b")], rows);
        let s = table_stats(&t);
        for c in &s.columns {
            prop_assert!(c.min <= c.mean + 1e-9 && c.mean <= c.max + 1e-9);
            if c.std_dev == 0.0 {
                prop_assert!((c.max - c.min).abs() < 1e-9);
            }
        }
        prop_assert!((0.0..=1.0).contains(&s.dominance_fraction));
    }
}
