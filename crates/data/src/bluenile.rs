//! Simulated Blue Nile diamond-catalog workload (§6.1).
//!
//! The paper's scalability experiments run on a crawl of 116,300 diamonds
//! with five scoring attributes: `Price` (lower preferred), `Carat`,
//! `Depth`, `LengthWidthRatio`, and `Table` (higher preferred). This
//! simulator reproduces the statistical shape that matters for those
//! experiments — a heavy-tailed carat distribution, price super-linear in
//! carat (so price and carat are strongly anti-correlated once price is
//! flipped to lower-is-better... i.e. the two aligned columns correlate),
//! and near-Gaussian cut proportions — at any requested size.

use crate::table::{Column, RawTable};
use rand::Rng;
use srank_sample::normal::NormalSampler;

/// Catalog size of the paper's crawl.
pub const PAPER_SIZE: usize = 116_300;

/// Generates `n` simulated diamonds.
pub fn bluenile<R: Rng + ?Sized>(rng: &mut R, n: usize) -> RawTable {
    let mut normal = NormalSampler::new();
    let rows = (0..n)
        .map(|_| {
            // Carat: log-normal around ~0.9ct, truncated to plausible range.
            let carat = (0.9 * (0.55 * normal.sample(rng)).exp()).clamp(0.2, 10.0);
            // Price: roughly carat^2.4 with grade noise (cut/color/clarity),
            // floored at the catalog's cheapest listings.
            let price = (4300.0 * carat.powf(2.4) * (0.35 * normal.sample(rng)).exp()).max(250.0);
            // Cut proportions: near-Gaussian around ideal values.
            let depth = 61.8 + 1.4 * normal.sample(rng);
            let lw_ratio = 1.01 + 0.05 * normal.sample(rng).abs();
            let table = 57.0 + 2.0 * normal.sample(rng);
            vec![price, carat, depth, lw_ratio, table]
        })
        .collect();
    RawTable::new(
        "bluenile",
        vec![
            Column::lower("price"),
            Column::higher("carat"),
            Column::higher("depth"),
            Column::higher("lw_ratio"),
            Column::higher("table"),
        ],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_plausible_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = bluenile(&mut rng, 1000);
        assert_eq!(t.n_rows(), 1000);
        assert_eq!(t.n_cols(), 5);
        for r in &t.rows {
            assert!(r[0] > 100.0, "price {}", r[0]);
            assert!((0.2..=10.0).contains(&r[1]), "carat {}", r[1]);
            assert!((50.0..75.0).contains(&r[2]), "depth {}", r[2]);
            assert!((0.9..1.5).contains(&r[3]), "lw {}", r[3]);
            assert!((45.0..70.0).contains(&r[4]), "table {}", r[4]);
        }
    }

    #[test]
    fn price_tracks_carat() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = bluenile(&mut rng, 5000);
        let rho = t.correlation(0, 1).unwrap();
        assert!(rho > 0.6, "price–carat ρ = {rho}");
    }

    #[test]
    fn normalization_aligns_directions() {
        // After normalization, a strictly cheaper and bigger diamond must
        // score higher under equal weights on (price, carat).
        let t = RawTable::new(
            "mini",
            vec![Column::lower("price"), Column::higher("carat")],
            vec![vec![1000.0, 1.0], vec![9000.0, 0.5], vec![5000.0, 0.7]],
        );
        let norm = t.normalized();
        let score = |r: &[f64]| r[0] + r[1];
        assert!(score(&norm[0]) > score(&norm[1]));
        assert!(score(&norm[0]) > score(&norm[2]));
    }

    #[test]
    fn projection_yields_lower_dimensional_variants() {
        // The paper varies d by projecting the first k attributes.
        let mut rng = StdRng::seed_from_u64(3);
        let t = bluenile(&mut rng, 100);
        for k in 2..=5 {
            let cols: Vec<usize> = (0..k).collect();
            assert_eq!(t.project(&cols).n_cols(), k);
        }
    }

    #[test]
    fn subsampling_for_scalability_sweeps() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = bluenile(&mut rng, 2000);
        for n in [100, 500, 1500] {
            assert_eq!(t.sample_rows(&mut rng, n).n_rows(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = bluenile(&mut StdRng::seed_from_u64(5), 20);
        let b = bluenile(&mut StdRng::seed_from_u64(5), 20);
        assert_eq!(a.rows, b.rows);
    }
}
