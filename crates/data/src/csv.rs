//! A small, dependency-free CSV reader for scoring tables.
//!
//! Downstream users of the library bring their own data; this module turns
//! a CSV with a header row into a [`RawTable`], selecting scoring columns
//! by name and tagging each with a preference direction. It handles the
//! common real-world cases — quoted fields (RFC-4180 style, with doubled
//! quotes), surrounding whitespace, empty lines, and both `\n` and `\r\n`
//! terminators — and reports precise parse errors.

use crate::table::{Column, Direction, RawTable};
use std::fmt;

/// A column request: name in the header plus its preference direction.
#[derive(Clone, Debug)]
pub struct ColumnSpec {
    pub name: String,
    pub direction: Direction,
}

impl ColumnSpec {
    pub fn higher(name: &str) -> Self {
        Self {
            name: name.to_string(),
            direction: Direction::HigherIsBetter,
        }
    }

    pub fn lower(name: &str) -> Self {
        Self {
            name: name.to_string(),
            direction: Direction::LowerIsBetter,
        }
    }
}

/// Errors from CSV parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header line.
    MissingHeader,
    /// A requested column is absent from the header.
    UnknownColumn(String),
    /// A data row has fewer fields than the header.
    ShortRow {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// A field could not be parsed as a float.
    BadNumber {
        line: usize,
        column: String,
        value: String,
    },
    /// A quoted field was never closed.
    UnterminatedQuote { line: usize },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header line"),
            CsvError::UnknownColumn(c) => write!(f, "column '{c}' not found in header"),
            CsvError::ShortRow {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            CsvError::BadNumber {
                line,
                column,
                value,
            } => {
                write!(
                    f,
                    "line {line}: column '{column}': '{value}' is not a number"
                )
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into a [`RawTable`] with the requested scoring columns.
///
/// Non-requested columns are ignored (they are the paper's "non-scoring
/// attributes used for filtering").
pub fn read_csv_str(name: &str, text: &str, spec: &[ColumnSpec]) -> Result<RawTable, CsvError> {
    assert!(!spec.is_empty(), "read_csv_str: need at least one column");
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or(CsvError::MissingHeader)?;
    let header = split_csv_line(header_line, 1)?;
    let mut indices = Vec::with_capacity(spec.len());
    for s in spec {
        let idx = header
            .iter()
            .position(|h| h == &s.name)
            .ok_or_else(|| CsvError::UnknownColumn(s.name.clone()))?;
        indices.push(idx);
    }

    let mut rows = Vec::new();
    for (lineno, line) in lines {
        let line_1based = lineno + 1;
        let fields = split_csv_line(line, line_1based)?;
        let max_needed = indices.iter().copied().max().expect("spec non-empty");
        if fields.len() <= max_needed {
            return Err(CsvError::ShortRow {
                line: line_1based,
                expected: max_needed + 1,
                got: fields.len(),
            });
        }
        let mut row = Vec::with_capacity(spec.len());
        for (s, &idx) in spec.iter().zip(&indices) {
            let raw = fields[idx].trim();
            let v: f64 = raw.parse().map_err(|_| CsvError::BadNumber {
                line: line_1based,
                column: s.name.clone(),
                value: raw.to_string(),
            })?;
            row.push(v);
        }
        rows.push(row);
    }

    let columns = spec
        .iter()
        .map(|s| Column {
            name: s.name.clone(),
            direction: s.direction,
        })
        .collect();
    Ok(RawTable::new(name, columns, rows))
}

/// Reads a CSV file from disk (thin wrapper over [`read_csv_str`]).
pub fn read_csv_file(
    path: &std::path::Path,
    spec: &[ColumnSpec],
) -> Result<RawTable, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("csv");
    Ok(read_csv_str(name, &text, spec)?)
}

/// Splits one CSV line into fields, honoring RFC-4180 quoting.
fn split_csv_line(line: &str, lineno: usize) -> Result<Vec<String>, CsvError> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(CsvError::UnterminatedQuote { line: lineno });
                }
                fields.push(std::mem::take(&mut field));
                break;
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"'); // doubled quote ⇒ literal quote
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.trim().is_empty() => {
                field.clear(); // opening quote swallows leading whitespace
                in_quotes = true;
            }
            Some(',') if !in_quotes => fields.push(std::mem::take(&mut field)),
            Some(c) => field.push(c),
        }
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
name,price,carat,note
a,1000,0.5,plain
b,2000,0.9,\"has, comma\"
c,1500,0.7,\"doubled \"\" quote\"
";

    #[test]
    fn reads_selected_columns_in_spec_order() {
        let t = read_csv_str(
            "diamonds",
            SAMPLE,
            &[ColumnSpec::higher("carat"), ColumnSpec::lower("price")],
        )
        .unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.columns[0].name, "carat");
        assert_eq!(t.columns[1].name, "price");
        assert_eq!(t.rows[0], vec![0.5, 1000.0]);
        assert_eq!(t.rows[2], vec![0.7, 1500.0]);
        assert_eq!(t.columns[1].direction, Direction::LowerIsBetter);
    }

    #[test]
    fn quoted_fields_with_commas_and_doubled_quotes() {
        // The quoted `note` column must not disturb field indexing.
        let t = read_csv_str("d", SAMPLE, &[ColumnSpec::higher("carat")]).unwrap();
        assert_eq!(
            t.rows.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![0.5, 0.9, 0.7]
        );
    }

    #[test]
    fn crlf_and_blank_lines_are_tolerated() {
        let text = "x,y\r\n1,2\r\n\r\n3,4\r\n";
        let t = read_csv_str(
            "t",
            text,
            &[ColumnSpec::higher("x"), ColumnSpec::higher("y")],
        )
        .unwrap();
        assert_eq!(t.rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn whitespace_around_numbers_is_trimmed() {
        let text = "a,b\n 1.5 ,  2.5\n";
        let t = read_csv_str(
            "t",
            text,
            &[ColumnSpec::higher("a"), ColumnSpec::higher("b")],
        )
        .unwrap();
        assert_eq!(t.rows[0], vec![1.5, 2.5]);
    }

    #[test]
    fn unknown_column_is_reported() {
        let err = read_csv_str("t", SAMPLE, &[ColumnSpec::higher("weight")]).unwrap_err();
        assert_eq!(err, CsvError::UnknownColumn("weight".into()));
    }

    #[test]
    fn bad_number_pinpoints_line_and_column() {
        let text = "a,b\n1,2\nx,4\n";
        let err = read_csv_str("t", text, &[ColumnSpec::higher("a")]).unwrap_err();
        assert_eq!(
            err,
            CsvError::BadNumber {
                line: 3,
                column: "a".into(),
                value: "x".into()
            }
        );
    }

    #[test]
    fn short_rows_are_rejected() {
        let text = "a,b,c\n1,2,3\n4,5\n";
        let err = read_csv_str("t", text, &[ColumnSpec::higher("c")]).unwrap_err();
        assert!(matches!(err, CsvError::ShortRow { line: 3, .. }));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let text = "a,b\n\"oops,2\n";
        let err = read_csv_str("t", text, &[ColumnSpec::higher("a")]).unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn empty_input_has_no_header() {
        assert_eq!(
            read_csv_str("t", "", &[ColumnSpec::higher("a")]).unwrap_err(),
            CsvError::MissingHeader
        );
    }

    #[test]
    fn roundtrip_through_normalization() {
        // End-to-end: CSV → RawTable → normalized matrix ready for ranking.
        let t = read_csv_str(
            "d",
            SAMPLE,
            &[ColumnSpec::lower("price"), ColumnSpec::higher("carat")],
        )
        .unwrap();
        let norm = t.normalized();
        // Cheapest row (a) gets price score 1; biggest carat (b) gets 1.
        assert_eq!(norm[0][0], 1.0);
        assert_eq!(norm[1][1], 1.0);
    }

    #[test]
    fn file_reader_works() {
        let dir = std::env::temp_dir().join("srank_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.csv");
        std::fs::write(&path, "x,y\n0.1,0.9\n0.4,0.6\n").unwrap();
        let t = read_csv_file(&path, &[ColumnSpec::higher("x"), ColumnSpec::higher("y")]).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.name, "mini");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn display_messages_are_informative() {
        let e = CsvError::BadNumber {
            line: 7,
            column: "q".into(),
            value: "NaNish".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("line 7") && msg.contains('q') && msg.contains("NaNish"));
    }
}
