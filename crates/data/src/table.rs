//! Raw tables: named columns with preference directions, plus the §2.1.1 /
//! §6.1 normalization pipeline.
//!
//! The paper normalizes every scoring attribute to `[0, 1]` with larger
//! values preferred: a higher-preferred attribute `A` maps
//! `v ↦ (v − min A)/(max A − min A)`, a lower-preferred one (e.g. Blue
//! Nile's `Price`) maps `v ↦ (max A − v)/(max A − min A)`.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// Whether larger or smaller raw values are preferred.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// A named scoring attribute.
#[derive(Clone, Debug, Serialize)]
pub struct Column {
    pub name: String,
    pub direction: Direction,
}

impl Column {
    pub fn higher(name: &str) -> Self {
        Self {
            name: name.to_string(),
            direction: Direction::HigherIsBetter,
        }
    }

    pub fn lower(name: &str) -> Self {
        Self {
            name: name.to_string(),
            direction: Direction::LowerIsBetter,
        }
    }
}

/// A raw dataset: rows of attribute values plus per-column metadata.
#[derive(Clone, Debug, Serialize)]
pub struct RawTable {
    pub name: String,
    pub columns: Vec<Column>,
    pub rows: Vec<Vec<f64>>,
}

impl RawTable {
    /// Builds a table, validating that every row matches the column count.
    ///
    /// # Panics
    /// Panics on ragged rows or empty columns.
    pub fn new(name: &str, columns: Vec<Column>, rows: Vec<Vec<f64>>) -> Self {
        assert!(!columns.is_empty(), "RawTable: need at least one column");
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), columns.len(), "RawTable: row {i} has wrong arity");
        }
        Self {
            name: name.to_string(),
            columns,
            rows,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Min-max normalizes each column to `[0, 1]`, flipping lower-preferred
    /// columns so that larger is always better. Constant columns normalize
    /// to all-zeros (no ranking signal either way).
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        let d = self.n_cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for r in &self.rows {
            for j in 0..d {
                mins[j] = mins[j].min(r[j]);
                maxs[j] = maxs[j].max(r[j]);
            }
        }
        self.rows
            .iter()
            .map(|r| {
                (0..d)
                    .map(|j| {
                        let range = maxs[j] - mins[j];
                        if range <= f64::EPSILON {
                            return 0.0;
                        }
                        match self.columns[j].direction {
                            Direction::HigherIsBetter => (r[j] - mins[j]) / range,
                            Direction::LowerIsBetter => (maxs[j] - r[j]) / range,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Keeps only the given columns (the paper's "project the first k
    /// attributes" device for varying `d`).
    pub fn project(&self, cols: &[usize]) -> RawTable {
        let columns = cols.iter().map(|&j| self.columns[j].clone()).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| cols.iter().map(|&j| r[j]).collect())
            .collect();
        RawTable::new(&format!("{}[{:?}]", self.name, cols), columns, rows)
    }

    /// A uniform random subset of `n` rows (the paper's device for varying
    /// the dataset size); returns all rows when `n ≥ n_rows`.
    pub fn sample_rows<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> RawTable {
        if n >= self.n_rows() {
            return self.clone();
        }
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        idx.sort_unstable();
        let rows = idx.into_iter().map(|i| self.rows[i].clone()).collect();
        RawTable::new(&format!("{}(n={n})", self.name), self.columns.clone(), rows)
    }

    /// Pearson correlation between two raw columns; `None` when either
    /// column is constant. Used by tests to validate generator shapes.
    pub fn correlation(&self, a: usize, b: usize) -> Option<f64> {
        let n = self.n_rows() as f64;
        if n < 2.0 {
            return None;
        }
        let mean = |j: usize| self.rows.iter().map(|r| r[j]).sum::<f64>() / n;
        let (ma, mb) = (mean(a), mean(b));
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for r in &self.rows {
            let da = r[a] - ma;
            let db = r[b] - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        if va <= f64::EPSILON || vb <= f64::EPSILON {
            return None;
        }
        Some(cov / (va.sqrt() * vb.sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> RawTable {
        RawTable::new(
            "t",
            vec![Column::higher("score"), Column::lower("price")],
            vec![vec![10.0, 100.0], vec![20.0, 300.0], vec![15.0, 200.0]],
        )
    }

    #[test]
    fn normalization_ranges_and_direction() {
        let norm = table().normalized();
        // Higher-preferred column: 10→0, 20→1.
        assert_eq!(norm[0][0], 0.0);
        assert_eq!(norm[1][0], 1.0);
        assert_eq!(norm[2][0], 0.5);
        // Lower-preferred column flips: 100→1, 300→0.
        assert_eq!(norm[0][1], 1.0);
        assert_eq!(norm[1][1], 0.0);
        assert_eq!(norm[2][1], 0.5);
    }

    #[test]
    fn normalized_values_always_in_unit_interval() {
        let norm = table().normalized();
        assert!(norm.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn constant_column_normalizes_to_zero() {
        let t = RawTable::new(
            "c",
            vec![Column::higher("x")],
            vec![vec![5.0], vec![5.0], vec![5.0]],
        );
        assert!(t.normalized().iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn projection_keeps_selected_columns() {
        let p = table().project(&[1]);
        assert_eq!(p.n_cols(), 1);
        assert_eq!(p.columns[0].name, "price");
        assert_eq!(p.rows[1], vec![300.0]);
    }

    #[test]
    fn sampling_rows_is_without_replacement() {
        let t = RawTable::new(
            "s",
            vec![Column::higher("x")],
            (0..100).map(|i| vec![i as f64]).collect(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let s = t.sample_rows(&mut rng, 30);
        assert_eq!(s.n_rows(), 30);
        let mut vals: Vec<f64> = s.rows.iter().map(|r| r[0]).collect();
        let before = vals.len();
        vals.dedup();
        assert_eq!(vals.len(), before, "sampled rows must be distinct");
        // Oversampling returns everything.
        assert_eq!(t.sample_rows(&mut rng, 1000).n_rows(), 100);
    }

    #[test]
    fn correlation_signs() {
        let pos = RawTable::new(
            "p",
            vec![Column::higher("a"), Column::higher("b")],
            (0..50)
                .map(|i| vec![i as f64, 2.0 * i as f64 + 1.0])
                .collect(),
        );
        assert!((pos.correlation(0, 1).unwrap() - 1.0).abs() < 1e-12);
        let neg = RawTable::new(
            "n",
            vec![Column::higher("a"), Column::higher("b")],
            (0..50).map(|i| vec![i as f64, -(i as f64)]).collect(),
        );
        assert!((neg.correlation(0, 1).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_column_is_none() {
        let t = RawTable::new(
            "c",
            vec![Column::higher("a"), Column::higher("b")],
            (0..10).map(|i| vec![i as f64, 7.0]).collect(),
        );
        assert!(t.correlation(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn ragged_rows_rejected() {
        RawTable::new("bad", vec![Column::higher("x")], vec![vec![1.0, 2.0]]);
    }
}
