//! Dataset generators and simulators for ranking-stability experiments.
//!
//! The evaluation of *On Obtaining Stable Rankings* (VLDB 2018) runs on
//! four real datasets — CSMetrics (d = 2), FIFA rankings (d = 4), the Blue
//! Nile diamond catalog (d = 5), and US DoT flight records (d = 3) — plus
//! the synthetic independent / correlated / anti-correlated generator of
//! the skyline literature. None of the real crawls are redistributable, so
//! this crate ships *simulators* tuned to reproduce the statistical
//! structure each experiment actually exercises (sizes, dimensionality,
//! correlation shape, preference directions); DESIGN.md §5 documents each
//! substitution and why it preserves the measured behaviour.
//!
//! All generators take an explicit RNG so every experiment is reproducible
//! from a seed, and return a [`RawTable`] whose
//! [`normalized`](table::RawTable::normalized) form is the `[0, 1]`,
//! higher-is-better matrix the ranking algorithms consume.

pub mod bluenile;
pub mod csmetrics;
pub mod csv;
pub mod dot;
pub mod fifa;
pub mod stats;
pub mod synthetic;
pub mod table;

pub use bluenile::bluenile;
pub use csmetrics::{csmetrics, csmetrics_top100};
pub use csv::{read_csv_file, read_csv_str, ColumnSpec, CsvError};
pub use dot::dot;
pub use fifa::{fifa, fifa_top100};
pub use stats::{table_stats, ColumnStats, TableStats};
pub use synthetic::{synthetic, CorrelationKind};
pub use table::{Column, Direction, RawTable};
