//! Synthetic data generators in the style of Börzsönyi et al. (the skyline
//! paper's generator, which §6.1 uses for the correlation experiment of
//! Figure 21): independent, correlated, and anti-correlated attributes in
//! `[0, 1]`.

use crate::table::{Column, RawTable};
use rand::Rng;

/// Correlation family of a synthetic dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorrelationKind {
    Independent,
    Correlated,
    AntiCorrelated,
}

impl CorrelationKind {
    pub fn label(&self) -> &'static str {
        match self {
            CorrelationKind::Independent => "independent",
            CorrelationKind::Correlated => "correlated",
            CorrelationKind::AntiCorrelated => "anti-correlated",
        }
    }
}

/// Strength of the (anti-)correlation; 0.9 reproduces the strongly-skewed
/// stability distributions of Figure 21.
const MIX: f64 = 0.9;

/// Generates `n` items with `d` attributes of the given correlation kind.
///
/// * `Independent` — i.i.d. `U(0, 1)` per attribute.
/// * `Correlated` — a shared `U(0, 1)` base value mixed with per-attribute
///   noise: items are good (or bad) in all dimensions at once, so many
///   dominance pairs exist.
/// * `AntiCorrelated` — attribute mass is split across dimensions so the
///   per-item sum is nearly constant: items good in one dimension are bad
///   in others, yielding almost no dominance pairs.
pub fn synthetic<R: Rng + ?Sized>(
    rng: &mut R,
    kind: CorrelationKind,
    n: usize,
    d: usize,
) -> RawTable {
    assert!(d >= 2, "synthetic: need d ≥ 2");
    let columns = (0..d)
        .map(|j| Column::higher(&format!("x{}", j + 1)))
        .collect();
    let rows = (0..n)
        .map(|_| match kind {
            CorrelationKind::Independent => (0..d).map(|_| rng.random::<f64>()).collect(),
            CorrelationKind::Correlated => {
                let base: f64 = rng.random();
                (0..d)
                    .map(|_| {
                        let noise: f64 = rng.random();
                        (MIX * base + (1.0 - MIX) * noise).clamp(0.0, 1.0)
                    })
                    .collect()
            }
            CorrelationKind::AntiCorrelated => {
                // Split a near-constant total across dimensions with a
                // symmetric Dirichlet draw (normalized exponentials), then
                // mix with uniform noise.
                let exps: Vec<f64> = (0..d)
                    .map(|_| -((1.0 - rng.random::<f64>()).ln()))
                    .collect();
                let sum: f64 = exps.iter().sum();
                let total = 0.5 * d as f64;
                exps.iter()
                    .map(|e| {
                        let share = e / sum * total;
                        let noise: f64 = rng.random();
                        (MIX * share + (1.0 - MIX) * noise).clamp(0.0, 1.0)
                    })
                    .collect()
            }
        })
        .collect();
    RawTable::new(&format!("synthetic-{}", kind.label()), columns, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srank_geom::dominance::skyline_sort_filter;

    fn gen(kind: CorrelationKind) -> RawTable {
        let mut rng = StdRng::seed_from_u64(100);
        synthetic(&mut rng, kind, 2000, 3)
    }

    #[test]
    fn values_stay_in_unit_cube() {
        for kind in [
            CorrelationKind::Independent,
            CorrelationKind::Correlated,
            CorrelationKind::AntiCorrelated,
        ] {
            let t = gen(kind);
            assert_eq!(t.n_rows(), 2000);
            assert!(t.rows.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn correlation_signs_match_kinds() {
        let ind = gen(CorrelationKind::Independent).correlation(0, 1).unwrap();
        let cor = gen(CorrelationKind::Correlated).correlation(0, 1).unwrap();
        let anti = gen(CorrelationKind::AntiCorrelated)
            .correlation(0, 1)
            .unwrap();
        assert!(ind.abs() < 0.1, "independent: ρ = {ind}");
        assert!(cor > 0.8, "correlated: ρ = {cor}");
        assert!(anti < -0.2, "anti-correlated: ρ = {anti}");
    }

    /// The defining skyline behaviour (and the cause of Figure 21's
    /// stability skew): correlated data has a tiny skyline, anti-correlated
    /// a huge one.
    #[test]
    fn skyline_sizes_order_by_correlation() {
        let sky = |kind| skyline_sort_filter(&gen(kind).rows).len();
        let s_cor = sky(CorrelationKind::Correlated);
        let s_ind = sky(CorrelationKind::Independent);
        let s_anti = sky(CorrelationKind::AntiCorrelated);
        assert!(
            s_cor < s_ind && s_ind < s_anti,
            "{s_cor} < {s_ind} < {s_anti} violated"
        );
        assert!(s_cor <= 30, "correlated skyline should be small: {s_cor}");
        assert!(
            s_anti >= 50,
            "anti-correlated skyline should be large: {s_anti}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = {
            let mut rng = StdRng::seed_from_u64(7);
            synthetic(&mut rng, CorrelationKind::Correlated, 10, 3)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(7);
            synthetic(&mut rng, CorrelationKind::Correlated, 10, 3)
        };
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn dimension_is_parameterizable() {
        let mut rng = StdRng::seed_from_u64(8);
        for d in 2..6 {
            let t = synthetic(&mut rng, CorrelationKind::Independent, 50, d);
            assert_eq!(t.n_cols(), d);
        }
    }
}
