//! Summary statistics for scoring tables.
//!
//! Producers should understand their data before interpreting stability:
//! attribute ranges drive normalization, and correlation structure drives
//! the number and skew of feasible rankings (§6.3 / Figure 21). This module
//! computes the per-column and pairwise summaries the CLI's `inspect`
//! command prints.

use crate::table::RawTable;
use serde::Serialize;

/// Per-column summary statistics.
#[derive(Clone, Debug, Serialize)]
pub struct ColumnStats {
    pub name: String,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub std_dev: f64,
}

/// A full table summary: per-column stats plus the Pearson correlation
/// matrix (row-major, `d × d`; `None` entries for constant columns).
#[derive(Clone, Debug, Serialize)]
pub struct TableStats {
    pub n_rows: usize,
    pub columns: Vec<ColumnStats>,
    pub correlations: Vec<Vec<Option<f64>>>,
    /// Fraction of item pairs in a dominance relationship (on the
    /// normalized table) — the direct driver of how many ordering
    /// exchanges, and hence feasible rankings, the dataset admits.
    /// Estimated on a capped subsample for large tables.
    pub dominance_fraction: f64,
}

/// Pairs examined for the dominance fraction before sampling kicks in.
const DOMINANCE_PAIR_CAP: usize = 2_000_000;

/// Computes summary statistics for a table.
///
/// # Panics
/// Panics on empty tables.
pub fn table_stats(table: &RawTable) -> TableStats {
    assert!(table.n_rows() > 0, "table_stats: empty table");
    let d = table.n_cols();
    let n = table.n_rows();
    let mut columns = Vec::with_capacity(d);
    for j in 0..d {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for r in &table.rows {
            min = min.min(r[j]);
            max = max.max(r[j]);
            sum += r[j];
        }
        let mean = sum / n as f64;
        let var = table
            .rows
            .iter()
            .map(|r| (r[j] - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        columns.push(ColumnStats {
            name: table.columns[j].name.clone(),
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        });
    }
    let correlations = (0..d)
        .map(|a| (0..d).map(|b| table.correlation(a, b)).collect())
        .collect();

    // Dominance fraction on the normalized rows (direction-adjusted).
    let norm = table.normalized();
    let total_pairs = n * (n - 1) / 2;
    let stride = (total_pairs / DOMINANCE_PAIR_CAP).max(1);
    let mut examined = 0usize;
    let mut dominated = 0usize;
    let mut counter = 0usize;
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            counter += 1;
            if !counter.is_multiple_of(stride) {
                continue;
            }
            examined += 1;
            if srank_geom::dominance::dominates(&norm[i], &norm[j])
                || srank_geom::dominance::dominates(&norm[j], &norm[i])
            {
                dominated += 1;
            }
            if examined >= DOMINANCE_PAIR_CAP {
                break 'outer;
            }
        }
    }
    let dominance_fraction = if examined == 0 {
        0.0
    } else {
        dominated as f64 / examined as f64
    };

    TableStats {
        n_rows: n,
        columns,
        correlations,
        dominance_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{synthetic, CorrelationKind};
    use crate::table::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mini() -> RawTable {
        RawTable::new(
            "mini",
            vec![Column::higher("x"), Column::lower("y")],
            vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![2.0, 20.0]],
        )
    }

    #[test]
    fn column_stats_are_correct() {
        let s = table_stats(&mini());
        assert_eq!(s.n_rows, 3);
        let x = &s.columns[0];
        assert_eq!((x.min, x.max), (1.0, 3.0));
        assert!((x.mean - 2.0).abs() < 1e-12);
        assert!((x.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn correlation_matrix_is_symmetric_with_unit_diagonal() {
        let s = table_stats(&mini());
        assert!((s.correlations[0][0].unwrap() - 1.0).abs() < 1e-12);
        assert!((s.correlations[1][1].unwrap() - 1.0).abs() < 1e-12);
        assert!((s.correlations[0][1].unwrap() - s.correlations[1][0].unwrap()).abs() < 1e-12);
        // x and y move together in the raw values.
        assert!(s.correlations[0][1].unwrap() > 0.99);
    }

    #[test]
    fn dominance_fraction_reflects_direction_adjustment() {
        // Raw x and y are positively correlated, but y is lower-preferred:
        // after normalization they anti-align, so dominance is rare.
        let s = table_stats(&mini());
        assert_eq!(s.dominance_fraction, 0.0);

        // Same values, both higher-preferred ⇒ full dominance chain.
        let aligned = RawTable::new(
            "a",
            vec![Column::higher("x"), Column::higher("y")],
            mini().rows,
        );
        assert_eq!(table_stats(&aligned).dominance_fraction, 1.0);
    }

    #[test]
    fn correlated_data_has_more_dominance_than_anticorrelated() {
        let mut rng = StdRng::seed_from_u64(1);
        let cor = table_stats(&synthetic(&mut rng, CorrelationKind::Correlated, 500, 3));
        let mut rng = StdRng::seed_from_u64(1);
        let anti = table_stats(&synthetic(
            &mut rng,
            CorrelationKind::AntiCorrelated,
            500,
            3,
        ));
        assert!(
            cor.dominance_fraction > 3.0 * anti.dominance_fraction,
            "{} vs {}",
            cor.dominance_fraction,
            anti.dominance_fraction
        );
    }

    #[test]
    fn constant_column_yields_none_correlation() {
        let t = RawTable::new(
            "c",
            vec![Column::higher("x"), Column::higher("k")],
            vec![vec![1.0, 5.0], vec![2.0, 5.0]],
        );
        let s = table_stats(&t);
        assert!(s.correlations[0][1].is_none());
        assert_eq!(s.columns[1].std_dev, 0.0);
    }

    #[test]
    fn large_table_subsampling_stays_calibrated() {
        // The strided estimate on a big independent table must land near
        // the analytic value: for i.i.d. continuous attributes a pair is in
        // a dominance relationship (either direction) with probability
        // 2·(1/2)^d — all d attribute comparisons agreeing, times two
        // directions.
        let mut rng = StdRng::seed_from_u64(2);
        let t = synthetic(&mut rng, CorrelationKind::Independent, 3000, 3);
        let s = table_stats(&t);
        let analytic = 2.0 * 0.5f64.powi(3);
        assert!(
            (s.dominance_fraction - analytic).abs() < 0.02,
            "{} vs {analytic}",
            s.dominance_fraction
        );
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn empty_table_panics() {
        table_stats(&RawTable::new("e", vec![Column::higher("x")], vec![]));
    }
}
