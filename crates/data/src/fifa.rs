//! Simulated FIFA men's world-ranking workload (§6.1).
//!
//! The FIFA score of a national team combines four yearly performance
//! values with decaying weights: `t[1] + 0.5·t[2] + 0.3·t[3] + 0.2·t[4]`.
//! We simulate the top-100 teams: each team has a latent strength, and its
//! four yearly values are noisy observations of that strength — strongly
//! correlated across years, as real team performance is, which is what
//! produces the dense arrangement of thin regions inside the paper's
//! 0.999-cosine-similarity region of interest (Figure 9).

use crate::table::{Column, RawTable};
use rand::Rng;
use srank_sample::normal::NormalSampler;

/// FIFA's published weighting of the four yearly performance attributes.
pub const REFERENCE_WEIGHTS: [f64; 4] = [1.0, 0.5, 0.3, 0.2];

/// Generates `n` simulated national teams with four yearly performance
/// columns (`year0` = current year … `year3` = three years back), all
/// higher-is-better, in FIFA-points-like raw units.
pub fn fifa<R: Rng + ?Sized>(rng: &mut R, n: usize) -> RawTable {
    let mut normal = NormalSampler::new();
    let rows = (0..n)
        .map(|_| {
            // Latent team strength in points (FIFA points ranged ~0–1600
            // in the era the paper studied).
            let strength = 700.0 + 250.0 * normal.sample(rng);
            (0..4)
                .map(|year| {
                    // Performance drifts year to year; older years carry
                    // slightly more noise (squad turnover).
                    let sigma = 90.0 + 15.0 * year as f64;
                    (strength + sigma * normal.sample(rng)).max(0.0)
                })
                .collect()
        })
        .collect();
    RawTable::new(
        "fifa",
        vec![
            Column::higher("year0"),
            Column::higher("year1"),
            Column::higher("year2"),
            Column::higher("year3"),
        ],
        rows,
    )
}

/// The paper's slice: the top-100 teams under the reference ranking.
pub fn fifa_top100<R: Rng + ?Sized>(rng: &mut R) -> RawTable {
    let universe = fifa(rng, 211); // FIFA ranked 211 member associations
    let norm = universe.normalized();
    let score = |r: &[f64]| {
        REFERENCE_WEIGHTS
            .iter()
            .zip(r)
            .map(|(w, x)| w * x)
            .sum::<f64>()
    };
    let mut idx: Vec<usize> = (0..norm.len()).collect();
    idx.sort_by(|&a, &b| {
        score(&norm[b])
            .partial_cmp(&score(&norm[a]))
            .unwrap()
            .then(a.cmp(&b))
    });
    idx.truncate(100);
    let rows = idx.into_iter().map(|i| universe.rows[i].clone()).collect();
    RawTable::new("fifa-top100", universe.columns.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = fifa(&mut rng, 50);
        assert_eq!(t.n_rows(), 50);
        assert_eq!(t.n_cols(), 4);
        assert!(t.rows.iter().flatten().all(|&v| v >= 0.0));
    }

    #[test]
    fn yearly_values_are_correlated() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = fifa(&mut rng, 3000);
        for a in 0..4 {
            for b in (a + 1)..4 {
                let rho = t.correlation(a, b).unwrap();
                assert!(rho > 0.6, "ρ({a},{b}) = {rho}: yearly form must persist");
                assert!(rho < 0.99, "ρ({a},{b}) = {rho}: but not perfectly");
            }
        }
    }

    #[test]
    fn top100_slice_has_paper_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = fifa_top100(&mut rng);
        assert_eq!(t.n_rows(), 100);
        assert_eq!(t.n_cols(), 4);
    }

    #[test]
    fn reference_weights_order_the_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = fifa_top100(&mut rng);
        let norm = t.normalized();
        let score = |r: &[f64]| {
            REFERENCE_WEIGHTS
                .iter()
                .zip(r)
                .map(|(w, x)| w * x)
                .sum::<f64>()
        };
        assert!(score(&norm[0]) > score(&norm[99]) - 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fifa_top100(&mut StdRng::seed_from_u64(9));
        let b = fifa_top100(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.rows, b.rows);
    }
}
