//! Simulated CSMetrics workload (§6.1).
//!
//! The paper ranks the top-100 computer-science institutions by measured
//! (`M`) and predicted (`P`) citations with the score `M^α · P^{1−α}`,
//! linearized as `α·log M + (1−α)·log P`; the default is `α = 0.3`.
//!
//! We have no access to the CSMetrics crawl, so this module generates a
//! statistically equivalent table: institution quality is heavy-tailed
//! (log-normal citation counts) and predicted citations track measured ones
//! closely (they are extrapolations of the same publication record). What
//! the experiments depend on is only (a) `d = 2`, (b) a strong but
//! imperfect `log M`–`log P` correlation so the top-100 slice admits a few
//! hundred feasible rankings (the paper's crawl gave 336), and (c) a
//! reference function `⟨0.3, 0.7⟩` whose region is thin.

use crate::table::{Column, RawTable};
use rand::Rng;
use srank_sample::normal::NormalSampler;

/// Reference weight vector of the published CSMetrics ranking
/// (`α = 0.3` on the log-transformed attributes).
pub const REFERENCE_WEIGHTS: [f64; 2] = [0.3, 0.7];

/// Generates a simulated CSMetrics table with `n` institutions.
///
/// Columns are `log_measured` and `log_predicted`, both higher-is-better,
/// ready for min-max normalization.
pub fn csmetrics<R: Rng + ?Sized>(rng: &mut R, n: usize) -> RawTable {
    let mut normal = NormalSampler::new();
    let rows = (0..n)
        .map(|_| {
            // Institution quality: log-citations, heavy-tailed across the
            // field (σ = 1.1 gives a realistic spread of ~3 decades).
            let log_m = 8.0 + 1.1 * normal.sample(rng);
            // Predicted citations extrapolate the same record: very high
            // but imperfect correlation in log space. The noise scale is
            // tuned so the top-100 slice admits a few hundred feasible
            // rankings with the reference function mid-pack by stability —
            // the qualitative shape of the paper's crawl (336 rankings,
            // reference 108th most stable).
            let log_p = 0.92 * (log_m - 8.0) + 8.1 + 0.18 * normal.sample(rng);
            vec![log_m, log_p]
        })
        .collect();
    RawTable::new(
        "csmetrics",
        vec![
            Column::higher("log_measured"),
            Column::higher("log_predicted"),
        ],
        rows,
    )
}

/// The paper's default dataset: the top-100 institutions under the
/// reference function (simulating "we restrict our attention to the
/// top-100 institutions according to this ranking").
pub fn csmetrics_top100<R: Rng + ?Sized>(rng: &mut R) -> RawTable {
    // Generate a larger universe, rank by the reference function on
    // normalized attributes, and keep the top 100 — mirroring how the
    // paper's slice was produced.
    let universe = csmetrics(rng, 400);
    let norm = universe.normalized();
    let mut idx: Vec<usize> = (0..norm.len()).collect();
    idx.sort_by(|&a, &b| {
        let sa = REFERENCE_WEIGHTS[0] * norm[a][0] + REFERENCE_WEIGHTS[1] * norm[a][1];
        let sb = REFERENCE_WEIGHTS[0] * norm[b][0] + REFERENCE_WEIGHTS[1] * norm[b][1];
        sb.partial_cmp(&sa).unwrap().then(a.cmp(&b))
    });
    idx.truncate(100);
    let rows = idx.into_iter().map(|i| universe.rows[i].clone()).collect();
    RawTable::new("csmetrics-top100", universe.columns.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_direction() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = csmetrics(&mut rng, 200);
        assert_eq!(t.n_rows(), 200);
        assert_eq!(t.n_cols(), 2);
    }

    #[test]
    fn log_attributes_are_strongly_correlated() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = csmetrics(&mut rng, 2000);
        let rho = t.correlation(0, 1).unwrap();
        assert!(rho > 0.95, "ρ = {rho}; predicted must track measured");
        assert!(rho < 0.999, "ρ = {rho}; correlation must be imperfect");
    }

    #[test]
    fn top100_is_ordered_by_reference_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = csmetrics_top100(&mut rng);
        assert_eq!(t.n_rows(), 100);
        let norm = t.normalized();
        // The first row must score at least as high as the last row under
        // the reference weights (ordering was by the pre-truncation
        // normalization, so allow slack for renormalization).
        let score = |r: &[f64]| REFERENCE_WEIGHTS[0] * r[0] + REFERENCE_WEIGHTS[1] * r[1];
        assert!(score(&norm[0]) > score(&norm[99]) - 1e-9);
    }

    #[test]
    fn normalized_values_well_spread() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = csmetrics_top100(&mut rng);
        let norm = t.normalized();
        // Both extremes of [0,1] are realized by min-max normalization.
        let col0: Vec<f64> = norm.iter().map(|r| r[0]).collect();
        assert!(col0.iter().cloned().fold(f64::INFINITY, f64::min).abs() < 1e-12);
        assert!((col0.iter().cloned().fold(0.0, f64::max) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = csmetrics_top100(&mut StdRng::seed_from_u64(5));
        let b = csmetrics_top100(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.rows, b.rows);
    }
}
