//! Simulated US DoT flight on-time workload (§6.1).
//!
//! The paper's largest scalability experiment (Figure 18) uses 1,322,023
//! flight records from the last quarter of 2017 with three scoring
//! attributes: `air-time`, `taxi-in`, and `taxi-out` — all lower-preferred
//! for on-time-performance style ranking. The simulator reproduces the
//! mixture shape of US domestic air time (short-haul vs long-haul) and
//! gamma-like taxi times; the experiment itself only exercises linear
//! scaling of the randomized operator, so the precise parameters are
//! immaterial.

use crate::table::{Column, RawTable};
use rand::Rng;
use srank_sample::normal::NormalSampler;

/// Record count of the paper's extract.
pub const PAPER_SIZE: usize = 1_322_023;

/// Generates `n` simulated flight records.
pub fn dot<R: Rng + ?Sized>(rng: &mut R, n: usize) -> RawTable {
    let mut normal = NormalSampler::new();
    let rows = (0..n)
        .map(|_| {
            // Bimodal air time: ~70% short-haul (≈90 min), 30% long-haul
            // (≈290 min).
            let air_time = if rng.random::<f64>() < 0.7 {
                (90.0 + 25.0 * normal.sample(rng)).max(20.0)
            } else {
                (290.0 + 45.0 * normal.sample(rng)).max(120.0)
            };
            // Taxi times: gamma-ish via sum of exponentials, in minutes.
            let exp = |r: &mut R| -> f64 { -(1.0 - r.random::<f64>()).ln() };
            let taxi_in = 3.0 + 2.5 * (exp(rng) + exp(rng));
            let taxi_out = 8.0 + 4.0 * (exp(rng) + exp(rng));
            vec![air_time, taxi_in, taxi_out]
        })
        .collect();
    RawTable::new(
        "dot",
        vec![
            Column::lower("air_time"),
            Column::lower("taxi_in"),
            Column::lower("taxi_out"),
        ],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = dot(&mut rng, 2000);
        assert_eq!(t.n_rows(), 2000);
        assert_eq!(t.n_cols(), 3);
        for r in &t.rows {
            assert!(r[0] >= 20.0, "air time {}", r[0]);
            assert!(r[1] >= 3.0, "taxi in {}", r[1]);
            assert!(r[2] >= 8.0, "taxi out {}", r[2]);
        }
    }

    #[test]
    fn air_time_is_bimodal() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = dot(&mut rng, 20_000);
        let short = t.rows.iter().filter(|r| r[0] < 180.0).count() as f64;
        let frac_short = short / t.n_rows() as f64;
        assert!(
            (frac_short - 0.7).abs() < 0.03,
            "short-haul fraction {frac_short}"
        );
        // The valley between modes is sparse.
        let valley = t
            .rows
            .iter()
            .filter(|r| (170.0..210.0).contains(&r[0]))
            .count() as f64
            / t.n_rows() as f64;
        assert!(valley < 0.05, "valley mass {valley}");
    }

    #[test]
    fn all_columns_lower_preferred_flip_under_normalization() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = dot(&mut rng, 500);
        let norm = t.normalized();
        // The record with the minimum air time must have normalized air
        // time 1.0.
        let (argmin, _) = t
            .rows
            .iter()
            .enumerate()
            .min_by(|a, b| a.1[0].partial_cmp(&b.1[0]).unwrap())
            .unwrap();
        assert!((norm[argmin][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scales_to_large_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = dot(&mut rng, 100_000);
        assert_eq!(t.n_rows(), 100_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = dot(&mut StdRng::seed_from_u64(5), 10);
        let b = dot(&mut StdRng::seed_from_u64(5), 10);
        assert_eq!(a.rows, b.rows);
    }
}
