//! End-to-end calibration of the d = 3 pipeline against the exact
//! spherical-area oracle: every stability number the sampled operators
//! report must agree with Girard's theorem.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stable_rankings::prelude::*;

fn workload() -> Dataset {
    let mut rng = StdRng::seed_from_u64(314);
    let table = synthetic(&mut rng, CorrelationKind::Independent, 15, 3);
    Dataset::from_rows(&table.normalized()).unwrap()
}

/// GET-NEXTmd's sampled stabilities match the exact areas of the regions it
/// returns.
#[test]
fn arrangement_stabilities_match_exact_areas() {
    let data = workload();
    let roi = RegionOfInterest::full(3);
    let mut rng = StdRng::seed_from_u64(1);
    let mut md = MdEnumerator::new(&data, &roi, 150_000, &mut rng).unwrap();
    for s in md.top_h(8) {
        let exact = stability_verify_3d_exact(&data, &s.ranking)
            .unwrap()
            .expect("enumerated rankings are feasible")
            .stability;
        // 150k samples ⇒ σ ≈ √(p(1−p)/150k) ≤ 0.0013.
        assert!(
            (s.stability - exact).abs() < 0.006,
            "arrangement {} vs exact {}",
            s.stability,
            exact
        );
    }
}

/// The randomized operator's full-ranking estimates match exact areas.
#[test]
fn randomized_stabilities_match_exact_areas() {
    let data = workload();
    let roi = RegionOfInterest::full(3);
    let mut op = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.01).unwrap();
    op.sample_n_parallel(9, 100_000, 8);
    let mut rng = StdRng::seed_from_u64(2);
    let mut checked = 0;
    for _ in 0..6 {
        let Some(d) = op.get_next_budget(&mut rng, 0) else {
            break;
        };
        let ranking = Ranking::new(d.items.clone()).unwrap();
        let exact = stability_verify_3d_exact(&data, &ranking)
            .unwrap()
            .expect("sampled rankings are feasible")
            .stability;
        assert!(
            (d.stability - exact).abs() <= (4.0 * d.confidence_error).max(0.004),
            "randomized {} ± {} vs exact {}",
            d.stability,
            d.confidence_error,
            exact
        );
        checked += 1;
    }
    assert!(checked >= 4, "need several rankings, got {checked}");
}

/// The ExactLp arrangement mode enumerates a superset of the sampled mode,
/// and the exact areas of everything it finds sum to 1.
#[test]
fn exact_lp_enumeration_covers_the_orthant() {
    let mut rng = StdRng::seed_from_u64(3);
    // Independent data: enough non-dominating pairs for a rich arrangement
    // (correlated data at this size can collapse to a near-total dominance
    // chain with only a couple of feasible rankings).
    let table = synthetic(&mut rng, CorrelationKind::Independent, 8, 3);
    let data = Dataset::from_rows(&table.normalized()).unwrap();
    let roi = RegionOfInterest::full(3);
    let buffer = roi.sampler().sample_buffer(&mut rng, 300);
    let mut lp =
        MdEnumerator::with_samples_and_mode(&data, &roi, buffer, PassThroughMode::ExactLp).unwrap();
    let mut exact_total = 0.0;
    let mut count = 0;
    while let Some(s) = lp.get_next() {
        let exact = stability_verify_3d_exact(&data, &s.ranking)
            .unwrap()
            .expect("feasible")
            .stability;
        exact_total += exact;
        count += 1;
    }
    assert!(count >= 3, "several rankings expected, got {count}");
    assert!(
        (exact_total - 1.0).abs() < 1e-6,
        "exact areas over the full arrangement must cover the orthant: {exact_total}"
    );
}
