//! Cross-crate integration tests: the exact 2-D path, the arrangement
//! path, and the randomized path must agree with each other on shared
//! ground, across the full pipeline from raw tables to stable rankings.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stable_rankings::prelude::*;

/// CSMetrics-style pipeline: all three algorithm families find the same
/// most stable ranking with consistent stability values.
#[test]
fn three_paths_agree_on_csmetrics() {
    let mut rng = StdRng::seed_from_u64(1);
    let table = csmetrics_top100(&mut rng);
    let data = Dataset::from_rows(&table.normalized()).unwrap();

    // Exact sweep.
    let mut sweep = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
    let exact = sweep.get_next().unwrap();

    // Arrangement + sampled oracle.
    let roi = RegionOfInterest::full(2);
    let mut md_rng = StdRng::seed_from_u64(2);
    let mut md = MdEnumerator::new(&data, &roi, 100_000, &mut md_rng).unwrap();
    let sampled = md.get_next().unwrap();

    // Randomized counting.
    let mut r_rng = StdRng::seed_from_u64(3);
    let mut randomized = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.05).unwrap();
    let counted = randomized.get_next_budget(&mut r_rng, 100_000).unwrap();

    assert_eq!(exact.ranking, sampled.ranking, "sweep vs arrangement");
    assert_eq!(
        exact.ranking.order(),
        counted.items.as_slice(),
        "sweep vs randomized"
    );
    assert!(
        (exact.stability - sampled.stability).abs() < 0.01,
        "exact {} vs arrangement {}",
        exact.stability,
        sampled.stability
    );
    assert!(
        (exact.stability - counted.stability).abs() < 0.01,
        "exact {} vs randomized {}",
        exact.stability,
        counted.stability
    );
}

/// The fixed-confidence operator's interval really covers the exact value.
#[test]
fn fixed_confidence_brackets_exact_stability() {
    let mut rng = StdRng::seed_from_u64(4);
    let table = csmetrics_top100(&mut rng);
    let data = Dataset::from_rows(&table.normalized()).unwrap();
    let roi = RegionOfInterest::full(2);

    let mut op = RandomizedEnumerator::new(&data, &roi, RankingScope::Full, 0.01).unwrap();
    let mut op_rng = StdRng::seed_from_u64(5);
    let found = op
        .get_next_confidence(&mut op_rng, 0.002, 2_000_000)
        .unwrap();
    assert!(found.confidence_error <= 0.002);

    let ranking = Ranking::new(found.items.clone()).unwrap();
    let exact = stability_verify_2d(&data, &ranking, AngleInterval::full())
        .unwrap()
        .expect("discovered ranking is feasible")
        .stability;
    // 99% interval with hefty slack (single trial).
    assert!(
        (found.stability - exact).abs() <= 4.0 * found.confidence_error,
        "estimate {} ± {} vs exact {}",
        found.stability,
        found.confidence_error,
        exact
    );
}

/// MD verification of the 2-D sweep's regions: every region the sweep
/// finds is confirmed by Algorithm 4 + oracle at matching stability.
#[test]
fn md_verification_confirms_sweep_regions() {
    let mut rng = StdRng::seed_from_u64(6);
    let table = csmetrics_top100(&mut rng);
    let data = Dataset::from_rows(&table.normalized()).unwrap();

    let mut sweep = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
    let top = sweep.top_h(5);

    let roi = RegionOfInterest::full(2);
    let mut s_rng = StdRng::seed_from_u64(7);
    let samples = roi.sampler().sample_buffer(&mut s_rng, 200_000);
    for s in top {
        let v = stability_verify_md(&data, &s.ranking, &samples)
            .unwrap()
            .expect("sweep rankings are feasible");
        assert!(
            (v.stability - s.stability).abs() < 0.01,
            "sweep {} vs MD {}",
            s.stability,
            v.stability
        );
    }
}

/// The cone region of interest behaves consistently across the exact 2-D
/// clipping and the cap-sampled MD estimate.
#[test]
fn cone_roi_consistency_in_2d() {
    let mut rng = StdRng::seed_from_u64(8);
    let table = csmetrics_top100(&mut rng);
    let data = Dataset::from_rows(&table.normalized()).unwrap();
    let reference = [0.3, 0.7];
    let theta = 0.998f64.acos();

    // Exact: clip the interval.
    let interval = AngleInterval::around(&reference, theta).unwrap();
    let mut sweep = Enumerator2D::new(&data, interval).unwrap();
    let exact = sweep.get_next().unwrap();

    // Sampled: cap ROI.
    let roi = RegionOfInterest::cone(&reference, theta);
    let mut md_rng = StdRng::seed_from_u64(9);
    let mut md = MdEnumerator::new(&data, &roi, 100_000, &mut md_rng).unwrap();
    let sampled = md.get_next().unwrap();

    assert_eq!(exact.ranking, sampled.ranking);
    assert!(
        (exact.stability - sampled.stability).abs() < 0.02,
        "exact-in-interval {} vs cap-sampled {}",
        exact.stability,
        sampled.stability
    );
}

/// End-to-end FIFA pipeline: the d = 4 arrangement enumerator's output is
/// internally consistent and its representatives live in the cone.
#[test]
fn fifa_pipeline_is_consistent() {
    let mut rng = StdRng::seed_from_u64(10);
    let table = fifa_top100(&mut rng);
    let data = Dataset::from_rows(&table.normalized()).unwrap();
    let roi = RegionOfInterest::cone_cosine(&[1.0, 0.5, 0.3, 0.2], 0.999);

    let mut md_rng = StdRng::seed_from_u64(11);
    let mut md = MdEnumerator::new(&data, &roi, 10_000, &mut md_rng).unwrap();
    let top = md.top_h(20);
    assert!(!top.is_empty());
    let mut prev = f64::INFINITY;
    let mut total = 0.0;
    for s in &top {
        assert!(s.stability <= prev + 1e-12, "ordering violated");
        prev = s.stability;
        total += s.stability;
        assert!(roi.contains(&s.representative), "representative escaped U*");
        assert_eq!(
            data.rank(&s.representative).unwrap(),
            s.ranking,
            "representative does not generate its ranking"
        );
    }
    assert!(total <= 1.0 + 1e-9);
}

/// Dominance survives the whole pipeline: items dominated in the raw table
/// (after normalization) never outrank their dominators in any enumerated
/// ranking.
#[test]
fn dominance_respected_through_pipeline() {
    let mut rng = StdRng::seed_from_u64(12);
    let table = synthetic(&mut rng, CorrelationKind::Correlated, 40, 3);
    let rows = table.normalized();
    let data = Dataset::from_rows(&rows).unwrap();

    let mut pairs = Vec::new();
    for i in 0..rows.len() {
        for j in 0..rows.len() {
            if i != j && dominates(&rows[i], &rows[j]) {
                pairs.push((i as u32, j as u32));
            }
        }
    }
    assert!(
        !pairs.is_empty(),
        "correlated data should have dominance pairs"
    );

    let roi = RegionOfInterest::full(3);
    let mut md_rng = StdRng::seed_from_u64(13);
    let mut md = MdEnumerator::new(&data, &roi, 5_000, &mut md_rng).unwrap();
    for s in md.top_h(10) {
        for &(hi, lo) in &pairs {
            assert!(
                s.ranking.rank_of(hi).unwrap() < s.ranking.rank_of(lo).unwrap(),
                "dominated item {lo} outranked its dominator {hi}"
            );
        }
    }
}

/// Top-k set stability from the randomized operator is consistent with
/// brute-force counting over the same samples (DoT-style workload).
#[test]
fn randomized_topk_matches_brute_force_counting() {
    let mut rng = StdRng::seed_from_u64(14);
    let table = dot(&mut rng, 2_000);
    let data = Dataset::from_rows(&table.normalized()).unwrap();
    let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], std::f64::consts::PI / 50.0);
    let k = 10;

    // Operator path.
    let mut op = RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(k), 0.05).unwrap();
    let mut op_rng = StdRng::seed_from_u64(15);
    let best = op.get_next_budget(&mut op_rng, 5_000).unwrap();

    // Brute force with identical seed ⇒ identical samples.
    let mut bf_rng = StdRng::seed_from_u64(15);
    let sampler = roi.sampler();
    let mut counts: std::collections::HashMap<Vec<u32>, u64> = Default::default();
    for _ in 0..5_000 {
        let w = sampler.sample(&mut bf_rng);
        let mut set = data.top_k(&w, k).unwrap();
        set.sort_unstable();
        *counts.entry(set).or_default() += 1;
    }
    let (bf_best, bf_count) = counts
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(k, v)| (k.clone(), *v))
        .unwrap();
    assert_eq!(best.items, bf_best);
    assert!((best.stability - bf_count as f64 / 5_000.0).abs() < 1e-12);
}
