//! Integration tests pinning the paper's concrete claims and worked
//! examples, end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stable_rankings::prelude::*;

/// §2.1.2 + Figure 1: the full worked example.
#[test]
fn figure1_worked_example() {
    let data = Dataset::figure1();
    // Scores under f = x1 + x2 (Figure 1a).
    let f = ScoringFunction::new(&[1.0, 1.0]).unwrap();
    let scores: Vec<f64> = (0..5).map(|i| f.score(data.item(i))).collect();
    let expected = [1.34, 1.48, 1.36, 1.38, 1.35];
    for (s, e) in scores.iter().zip(&expected) {
        assert!((s - e).abs() < 1e-12);
    }
    // Ranking ⟨t2, t4, t3, t5, t1⟩.
    assert_eq!(data.rank(f.weights()).unwrap().order(), &[1, 3, 2, 4, 0]);
    // Figure 1c: 11 regions.
    let e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
    assert_eq!(e.num_regions(), 11);
}

/// §3.2: the region-of-interest examples. U*₁ = {w₁ ≤ w₂, 2w₁ ≥ w₂};
/// U*₂ = π/10 around ⟨1, 1⟩, i.e. [3π/20, 7π/20] — check the angles.
#[test]
fn section_3_2_interval_examples() {
    use std::f64::consts::{FRAC_PI_4, PI};
    // U*₂ = the π/10-cone around f = x1 + x2 is [π/4 − π/10, π/4 + π/10]
    // = [3π/20, 7π/20] exactly as the paper states.
    let u2 = AngleInterval::around(&[1.0, 1.0], PI / 10.0).unwrap();
    assert!((u2.lo() - 3.0 * PI / 20.0).abs() < 1e-12);
    assert!((u2.hi() - 7.0 * PI / 20.0).abs() < 1e-12);
    // And π/10 is the 95.1% cosine similarity the paper quotes.
    assert!(((PI / 10.0).cos() - 0.951).abs() < 5e-4);
    // U*₁ spans [π/4, arctan 2] (the paper rounds the top to π/3).
    let f_lo = ScoringFunction::from_angles(&[FRAC_PI_4 + 1e-6]).unwrap();
    assert!(f_lo.weights()[1] >= f_lo.weights()[0]);
}

/// §2.2.5 toy example, via the exact enumerator: among all top-3 sets,
/// {t2, t3, t4} is the most stable while the skyline is {t1, t2, t5}.
#[test]
fn toy_example_exact_top3_sets() {
    let rows = vec![
        vec![1.0, 0.0],
        vec![0.99, 0.99],
        vec![0.98, 0.98],
        vec![0.97, 0.97],
        vec![0.0, 1.0],
    ];
    let data = Dataset::from_rows(&rows).unwrap();
    // Exact: accumulate top-3-set stability over the sweep's regions.
    let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
    let mut set_stability: std::collections::HashMap<Vec<u32>, f64> = Default::default();
    while let Some(s) = e.get_next() {
        let set = s.ranking.top_k_set(3).items().to_vec();
        *set_stability.entry(set).or_default() += s.stability;
    }
    let (best_set, best_mass) = set_stability
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(k, v)| (k.clone(), *v))
        .unwrap();
    assert_eq!(
        best_set,
        vec![1, 2, 3],
        "most stable top-3 must be {{t2,t3,t4}}"
    );
    assert!(
        best_mass > 0.5,
        "the near-diagonal trio owns most of the quadrant"
    );
    assert_eq!(skyline_bnl(&rows), vec![0, 1, 4]);
}

/// §6.2 CSMetrics claims, on the simulator: a few hundred feasible
/// rankings; the reference ranking is mid-pack stable (not top-100); the
/// most stable ranking beats it severalfold; the narrow 0.998-cos-sim
/// region still holds dozens of rankings with the reference below its
/// maximum.
#[test]
fn csmetrics_shape_claims() {
    let mut rng = StdRng::seed_from_u64(2018);
    let table = csmetrics_top100(&mut rng);
    let data = Dataset::from_rows(&table.normalized()).unwrap();
    let reference = data.rank(&[0.3, 0.7]).unwrap();

    let mut all = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
    let n = all.num_regions();
    assert!(
        (150..1500).contains(&n),
        "feasible rankings should be a few hundred (paper: 336), got {n}"
    );

    let v = stability_verify_2d(&data, &reference, AngleInterval::full())
        .unwrap()
        .expect("reference is feasible");

    // Rank of the reference by stability.
    let mut position = 0;
    let mut best = None;
    while let Some(s) = all.get_next() {
        position += 1;
        if best.is_none() {
            best = Some(s.clone());
        }
        if s.ranking == reference {
            break;
        }
    }
    assert!(
        position > 50,
        "reference must not be among the most stable (got #{position})"
    );
    let best = best.unwrap();
    assert!(
        best.stability > 3.0 * v.stability,
        "most stable ({}) should dwarf the reference ({})",
        best.stability,
        v.stability
    );

    // The narrow region around the reference function.
    let narrow = AngleInterval::around(&[0.3, 0.7], 0.998f64.acos()).unwrap();
    let mut near = Enumerator2D::new(&data, narrow).unwrap();
    let m = near.num_regions();
    assert!(
        (5..200).contains(&m),
        "paper found 22 rankings in the narrow region, got {m}"
    );
    let near_best = near.get_next().unwrap();
    let v_near = stability_verify_2d(&data, &reference, narrow)
        .unwrap()
        .expect("reference is feasible in its own neighbourhood");
    assert!(
        near_best.stability > v_near.stability,
        "even nearby, the reference is not the most stable"
    );
}

/// §6.2 FIFA claim: inside the 0.999-cosine cone around FIFA's weights
/// there are many feasible rankings and the official one is not among the
/// most stable.
#[test]
fn fifa_shape_claims() {
    let mut rng = StdRng::seed_from_u64(1904);
    let table = fifa_top100(&mut rng);
    let data = Dataset::from_rows(&table.normalized()).unwrap();
    let reference = data.rank(&[1.0, 0.5, 0.3, 0.2]).unwrap();
    let roi = RegionOfInterest::cone_cosine(&[1.0, 0.5, 0.3, 0.2], 0.999);

    let mut md_rng = StdRng::seed_from_u64(20);
    let mut md = MdEnumerator::new(&data, &roi, 10_000, &mut md_rng).unwrap();
    let top100 = md.top_h(100);
    assert!(
        top100.len() >= 50,
        "d = 4 should yield many rankings even in a narrow cone"
    );
    assert!(
        !top100.iter().any(|s| s.ranking == reference),
        "the official FIFA ranking should not appear among the top-100 stable"
    );
}

/// §6.3 Figure 21 claim: correlated data concentrates stability mass on
/// the top sets (steeper drop), anti-correlated data spreads it out.
#[test]
fn correlation_effect_on_topk_stability() {
    let stability_profile = |kind: CorrelationKind, seed: u64| -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = synthetic(&mut rng, kind, 2_000, 3);
        let data = Dataset::from_rows(&table.normalized()).unwrap();
        let roi = RegionOfInterest::cone(&[1.0, 1.0, 1.0], std::f64::consts::PI / 50.0);
        let mut op =
            RandomizedEnumerator::new(&data, &roi, RankingScope::TopKSet(10), 0.05).unwrap();
        let mut op_rng = StdRng::seed_from_u64(seed + 1);
        op.sample_n(&mut op_rng, 5_000);
        (0..10)
            .map_while(|_| op.get_next_budget(&mut op_rng, 0))
            .map(|d| d.stability)
            .collect()
    };
    let cor = stability_profile(CorrelationKind::Correlated, 30);
    let anti = stability_profile(CorrelationKind::AntiCorrelated, 40);
    assert!(
        cor[0] > anti[0],
        "correlated top set should be more stable: {} vs {}",
        cor[0],
        anti[0]
    );
    // Steeper slope for correlated data: ratio of 1st to 5th stability.
    if cor.len() >= 5 && anti.len() >= 5 {
        let cor_slope = cor[0] / cor[4].max(1e-9);
        let anti_slope = anti[0] / anti[4].max(1e-9);
        assert!(
            cor_slope > anti_slope,
            "correlated should drop faster: {cor_slope} vs {anti_slope}"
        );
    }
}

/// Theorem 2 in action end-to-end: discovering a ranking of stability S
/// takes on the order of 1/S samples.
#[test]
fn discovery_cost_follows_theorem2() {
    let data = Dataset::figure1();
    let roi = RegionOfInterest::full(2);
    // Exact stabilities of all 11 rankings.
    let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
    let all: Vec<StableRanking2D> = std::iter::from_fn(|| e.get_next()).collect();
    let rarest = all.last().unwrap();
    let expected_cost = 1.0 / rarest.stability;

    // Measure the average discovery time of the rarest ranking.
    let trials = 40;
    let mut total = 0u64;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(1000 + t);
        let sampler = roi.sampler();
        let mut count = 0u64;
        loop {
            count += 1;
            let w = sampler.sample(&mut rng);
            if data.rank(&w).unwrap() == rarest.ranking {
                break;
            }
            assert!(count < 1_000_000, "rarest ranking never sampled");
        }
        total += count;
    }
    let mean = total as f64 / trials as f64;
    assert!(
        mean > expected_cost / 3.0 && mean < expected_cost * 3.0,
        "mean discovery cost {mean} should be near 1/S = {expected_cost}"
    );
}
