//! # stable-rankings
//!
//! A production-quality Rust implementation of **“On Obtaining Stable
//! Rankings”** (Asudeh, Jagadish, Miklau, Stoyanovich — PVLDB 12(3),
//! 2018): tools for *consumers* of ranked lists to verify how robust a
//! published ranking is to the choice of scoring weights, and for
//! *producers* to discover the most stable rankings within an acceptable
//! region of scoring functions.
//!
//! This facade crate re-exports the five library crates of the workspace:
//!
//! * [`core`] (`srank-core`) — the paper's algorithms: `SV2D`,
//!   `RAYSWEEPING`/`GET-NEXT2D`, multi-dimensional `SV`, `×hps`, the lazy
//!   arrangement `GET-NEXTmd`, and the randomized Monte-Carlo `GET-NEXTr`
//!   with full / top-k-ranked / top-k-set scopes;
//! * [`geom`] (`srank-geom`) — dual space, ordering-exchange hyperplanes,
//!   convex cones, rotations, dominance/skyline, LP feasibility;
//! * [`sample`] (`srank-sample`) — uniform function sampling (orthant and
//!   spherical-cap inverse-CDF), the stability oracle, sample
//!   partitioning, and Bernoulli confidence machinery;
//! * [`data`] (`srank-data`) — reproducible simulators for the paper's
//!   evaluation workloads (CSMetrics, FIFA, Blue Nile, DoT, synthetic);
//! * [`service`] (`srank-service`) — the concurrent stability-query
//!   engine behind `srank serve`: dataset registry, live `GET-NEXT`
//!   sessions with idle eviction, an LRU result cache with shared
//!   Monte-Carlo sample batches, and a line-delimited JSON transport
//!   (stdio or TCP worker pool).
//!
//! ## Example
//!
//! ```
//! use stable_rankings::prelude::*;
//! use rand::SeedableRng;
//!
//! // A producer scores candidates on aptitude and experience.
//! let data = Dataset::figure1();
//!
//! // How robust is the equal-weights ranking?
//! let published = data.rank(&[1.0, 1.0]).unwrap();
//! let verified =
//!     stability_verify_2d(&data, &published, AngleInterval::full()).unwrap().unwrap();
//! println!("published ranking occupies {:.1}% of the weight space",
//!          100.0 * verified.stability);
//!
//! // What would the most stable ranking be?
//! let mut e = Enumerator2D::new(&data, AngleInterval::full()).unwrap();
//! let best = e.get_next().unwrap();
//! assert!(best.stability >= verified.stability);
//! ```

pub use srank_core as core;
pub use srank_data as data;
pub use srank_geom as geom;
pub use srank_sample as sample;
pub use srank_service as service;

/// One-stop imports for applications.
pub mod prelude {
    pub use srank_core::prelude::*;
    pub use srank_core::{ordering_exchange_hyperplanes, ranking_region_md, Region2DInfo};
    pub use srank_data::{
        bluenile, csmetrics, csmetrics_top100, dot, fifa, fifa_top100, synthetic, Column,
        CorrelationKind, Direction, RawTable,
    };
    pub use srank_geom::dominance::{dominates, skyline_bnl, skyline_sort_filter};
    pub use srank_sample::confidence::{confidence_error, ConfidenceInterval};
    pub use srank_sample::store::SampleBuffer;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_glues_data_to_core() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let table = csmetrics_top100(&mut rng);
        let data = Dataset::from_rows(&table.normalized()).unwrap();
        assert_eq!(data.len(), 100);
        assert_eq!(data.dim(), 2);
        let reference = data.rank(&[0.3, 0.7]).unwrap();
        let v = stability_verify_2d(&data, &reference, AngleInterval::full())
            .unwrap()
            .expect("reference ranking is feasible");
        assert!(v.stability > 0.0);
    }
}
